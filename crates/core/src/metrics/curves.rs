//! Coverage-over-time curves and the savings computations of RQ3/RQ4.

use taopt_ui_model::{VirtualDuration, VirtualTime};

/// One point of a run's cumulative union-coverage curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CurvePoint {
    /// Global session time.
    pub time: VirtualTime,
    /// Cumulative union method coverage.
    pub covered: usize,
    /// Machine time consumed so far (sum over instances).
    pub machine_time: VirtualDuration,
}

/// Coverage at (or before) a given time on a monotone curve.
pub fn coverage_at(curve: &[CurvePoint], time: VirtualTime) -> usize {
    match curve.binary_search_by(|p| p.time.cmp(&time)) {
        Ok(i) => {
            // Several points can share a timestamp; take the last.
            let mut j = i;
            while j + 1 < curve.len() && curve[j + 1].time == time {
                j += 1;
            }
            curve[j].covered
        }
        Err(0) => 0,
        Err(i) => curve[i - 1].covered,
    }
}

/// Earliest wall-clock time at which the curve reaches `target` methods.
pub fn time_to_reach(curve: &[CurvePoint], target: usize) -> Option<VirtualTime> {
    curve.iter().find(|p| p.covered >= target).map(|p| p.time)
}

/// Machine time consumed when the curve first reaches `target` methods.
pub fn machine_time_to_reach(curve: &[CurvePoint], target: usize) -> Option<VirtualDuration> {
    curve
        .iter()
        .find(|p| p.covered >= target)
        .map(|p| p.machine_time)
}

/// Fraction of `total` saved by reaching the goal at `used` (0 when not
/// reached or when `used ≥ total`).
pub fn saved_fraction(used: Option<VirtualDuration>, total: VirtualDuration) -> f64 {
    match used {
        Some(u) if u < total => total.saturating_sub(u).fraction_of(total),
        _ => 0.0,
    }
}

/// Area under the (stepwise) coverage curve up to `horizon`, in
/// method·seconds. Integrates how *early* coverage arrives: two runs with
/// the same final coverage differ in AUC when one reaches it sooner —
/// the quantity behind the paper's duration-savings framing.
pub fn coverage_auc(curve: &[CurvePoint], horizon: VirtualTime) -> f64 {
    let mut auc = 0.0;
    let mut prev_t = VirtualTime::ZERO;
    let mut prev_c = 0usize;
    for p in curve {
        if p.time > horizon {
            break;
        }
        auc += prev_c as f64 * p.time.since(prev_t).as_secs() as f64;
        prev_t = p.time;
        prev_c = p.covered;
    }
    auc += prev_c as f64 * horizon.since(prev_t).as_secs() as f64;
    auc
}

/// Earliest time the curve reaches `fraction` of its own final coverage.
pub fn time_to_fraction(curve: &[CurvePoint], fraction: f64) -> Option<VirtualTime> {
    let final_cov = curve.last()?.covered;
    let target = (final_cov as f64 * fraction.clamp(0.0, 1.0)).ceil() as usize;
    time_to_reach(curve, target)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> Vec<CurvePoint> {
        vec![
            CurvePoint {
                time: VirtualTime::from_secs(10),
                covered: 100,
                machine_time: VirtualDuration::from_secs(10),
            },
            CurvePoint {
                time: VirtualTime::from_secs(20),
                covered: 250,
                machine_time: VirtualDuration::from_secs(40),
            },
            CurvePoint {
                time: VirtualTime::from_secs(30),
                covered: 300,
                machine_time: VirtualDuration::from_secs(90),
            },
        ]
    }

    #[test]
    fn coverage_lookup_is_stepwise() {
        let c = curve();
        assert_eq!(coverage_at(&c, VirtualTime::from_secs(5)), 0);
        assert_eq!(coverage_at(&c, VirtualTime::from_secs(10)), 100);
        assert_eq!(coverage_at(&c, VirtualTime::from_secs(25)), 250);
        assert_eq!(coverage_at(&c, VirtualTime::from_secs(99)), 300);
    }

    #[test]
    fn reach_times() {
        let c = curve();
        assert_eq!(time_to_reach(&c, 200), Some(VirtualTime::from_secs(20)));
        assert_eq!(time_to_reach(&c, 301), None);
        assert_eq!(
            machine_time_to_reach(&c, 300),
            Some(VirtualDuration::from_secs(90))
        );
    }

    #[test]
    fn saved_fraction_boundaries() {
        let total = VirtualDuration::from_secs(100);
        assert_eq!(saved_fraction(None, total), 0.0);
        assert_eq!(
            saved_fraction(Some(VirtualDuration::from_secs(100)), total),
            0.0
        );
        let half = saved_fraction(Some(VirtualDuration::from_secs(50)), total);
        assert!((half - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_rewards_earlier_coverage() {
        let early = vec![CurvePoint {
            time: VirtualTime::from_secs(10),
            covered: 100,
            machine_time: VirtualDuration::ZERO,
        }];
        let late = vec![CurvePoint {
            time: VirtualTime::from_secs(90),
            covered: 100,
            machine_time: VirtualDuration::ZERO,
        }];
        let h = VirtualTime::from_secs(100);
        assert!(coverage_auc(&early, h) > coverage_auc(&late, h));
        // Same final coverage at the horizon.
        assert_eq!(coverage_at(&early, h), coverage_at(&late, h));
        assert_eq!(coverage_auc(&[], h), 0.0);
    }

    #[test]
    fn time_to_fraction_tracks_the_curve() {
        let c = curve();
        assert_eq!(time_to_fraction(&c, 1.0), Some(VirtualTime::from_secs(30)));
        assert_eq!(time_to_fraction(&c, 0.3), Some(VirtualTime::from_secs(10)));
        assert_eq!(time_to_fraction(&[], 0.5), None);
    }

    #[test]
    fn duplicate_timestamps_take_last() {
        let c = vec![
            CurvePoint {
                time: VirtualTime::from_secs(10),
                covered: 100,
                machine_time: VirtualDuration::ZERO,
            },
            CurvePoint {
                time: VirtualTime::from_secs(10),
                covered: 150,
                machine_time: VirtualDuration::ZERO,
            },
        ];
        assert_eq!(coverage_at(&c, VirtualTime::from_secs(10)), 150);
    }
}
