//! Campaign runtime: many app sessions over one shared device farm.
//!
//! A *campaign* schedules N independent TaOPT app sessions onto a single
//! [`taopt_device::DeviceFarm`], interleaving their per-round loops under
//! a work-stealing worker pool while keeping every shared-resource
//! decision deterministic. The module tree:
//!
//! * [`step`] — [`step::SessionStep`], the reusable one-round driver
//!   factored out of `session.rs` (`ParallelSession::run` is now a thin
//!   loop over it);
//! * [`lease`] — [`lease::LeaseLedger`], device → app ownership records
//!   and lease-churn counters;
//! * [`scheduler`] — [`scheduler::run_campaign`], the round loop:
//!   parallel step phase, then a sequential boundary for leasing,
//!   scheduled kills, replacements and session completion.
//!
//! See `DESIGN.md` §10 for the scheduler model and the determinism
//! argument.

pub mod lease;
pub mod scheduler;
pub mod step;

pub use lease::LeaseLedger;
pub use scheduler::{
    run_campaign, AppReport, CampaignApp, CampaignConfig, CampaignResult, KillEvent,
};
pub use step::{instance_seed, MachineMeter, RoundOutcome, SessionFinish, SessionStep};
