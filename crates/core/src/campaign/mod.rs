//! Campaign runtime: many app sessions over one shared device farm.
//!
//! A *campaign* schedules N independent TaOPT app sessions onto a single
//! [`taopt_device::DeviceFarm`], interleaving their per-round loops under
//! a work-stealing worker pool while keeping every shared-resource
//! decision deterministic. The module tree:
//!
//! * [`step`] — [`step::SessionStep`], the reusable one-round driver
//!   factored out of `session.rs` (`ParallelSession::run` is now a thin
//!   loop over it);
//! * [`layers`] — the seam layer traits ([`BusTransport`],
//!   [`Enforcement`], plus the device seam in [`taopt_device::DevicePool`])
//!   bundled as [`StepLayers`]: the step runs plain or chaotic depending
//!   only on which implementations are plugged in;
//! * [`lease`] — [`lease::LeaseLedger`], device → app ownership records
//!   and lease-churn counters;
//! * [`pool`] — [`pool::ComputePool`], the persistent campaign-wide
//!   host-thread budget: one condvar-parked work-stealing pool serving
//!   both the per-app step tasks and the analyzer's phase-A tasks
//!   (replacing the per-round scoped-thread spawns);
//! * [`scheduler`] — [`scheduler::run_campaign`], the round loop:
//!   parallel step phase, then a sequential boundary for leasing,
//!   scheduled kills, rate-planned fault losses, replacements and session
//!   completion. With [`scheduler::CampaignConfig::faults`] set, the whole
//!   campaign runs under deterministic fault injection (a chaos campaign).
//!   [`scheduler::Campaign`] is the same loop held open one round at a
//!   time, for drivers that interleave checkpointing with execution;
//! * [`sequence`] — [`sequence::run_campaign_sequence`], longitudinal
//!   sequences over app releases: one campaign per version, threading
//!   [`crate::warmstart::WarmStart`] bundles across release boundaries
//!   and emitting per-version [`sequence::EvolutionReport`]s;
//! * [`snapshot`] — [`snapshot::CampaignDigest`], the round-boundary
//!   fingerprint a durable checkpoint stores and a restore replay must
//!   reproduce.
//!
//! See `DESIGN.md` §10 for the scheduler model and the determinism
//! argument, §12 for the layered runtime, §13 for checkpoint/resume.

pub mod layers;
pub mod lease;
pub mod pool;
pub mod scheduler;
pub mod sequence;
pub mod snapshot;
pub mod step;

pub use layers::{BusTransport, DirectEnforcement, Enforcement, FaultyBus, InertBus, StepLayers};
pub use lease::LeaseLedger;
pub use pool::ComputePool;
pub use scheduler::{
    run_campaign, AppReport, Campaign, CampaignApp, CampaignConfig, CampaignResult, KillEvent,
};
pub use sequence::{
    run_campaign_sequence, CampaignSequence, EvolutionAppReport, EvolutionReport, VersionOutcome,
};
pub use snapshot::{CampaignDigest, SlotDigest};
pub use step::{
    instance_seed, MachineMeter, RoundOutcome, SessionFinish, SessionStep, StepProgress,
};

// The bus seam re-decides `taopt_chaos::EventFate` per event; re-exported
// so layer implementors need not depend on the chaos crate directly.
pub use taopt_chaos::EventFate;
