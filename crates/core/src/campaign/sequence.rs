//! Longitudinal campaign sequences: one campaign per app release,
//! threaded through [`WarmStart`] bundles.
//!
//! A release train is `V0 → V1 → … → Vk`, each step derived by an
//! [`AppEvolution`]-sampled [`VersionDiff`]. [`run_campaign_sequence`]
//! runs one full campaign per version. In the *warm* arm each campaign
//! captures a [`WarmStart`] at the end; the next version re-validates it
//! against the diff's touched surface ([`WarmStart::invalidate`]) before
//! seeding its analyzer — untouched subspaces are re-dedicated at round
//! one, invalidated ones fall back to cold discovery. The *cold* arm
//! (`warm = false`) runs every version from scratch, which is the
//! baseline the longitudinal gates compare against.
//!
//! Each version yields an [`EvolutionReport`]: coverage delta against the
//! previous release, injected-regression catch rate, warm-reuse ratio and
//! rounds-to-first-dedication — the metrics a continuous-testing pipeline
//! would chart per release.

use std::collections::BTreeSet;
use std::sync::Arc;

use taopt_app_sim::{AppEvolution, CrashSignature, VersionDiff};
use taopt_ui_model::{Value, VirtualTime};

use crate::campaign::scheduler::{run_campaign, CampaignApp, CampaignConfig, CampaignResult};
use crate::coordinator::CoordinatorEvent;
use crate::error::TaoptError;
use crate::warmstart::{WarmReuse, WarmStart};

/// Per-app slice of one version's longitudinal report.
#[derive(Debug, Clone, PartialEq)]
pub struct EvolutionAppReport {
    /// App name.
    pub name: String,
    /// Union method coverage this version.
    pub coverage: usize,
    /// Coverage change against the previous version (0 for `V0`).
    pub coverage_delta: i64,
    /// Regression crashes this version's diff injected.
    pub injected_crashes: usize,
    /// Injected regression crashes the campaign caught.
    pub caught_regressions: usize,
    /// Injected regression crashes the campaign missed.
    pub missed_regressions: usize,
    /// Warm subspaces carried intact across the release boundary.
    pub subspaces_carried: usize,
    /// Warm subspaces invalidated by the diff's touched surface.
    pub subspaces_invalidated: usize,
    /// Carried fraction, `[0, 1]` (1.0 when nothing was learned yet).
    pub warm_reuse_ratio: f64,
    /// First global round with a subspace dedication (`None` = never).
    /// Warm starts re-dedicate carried territory at round one; cold
    /// starts pay the discovery + confirmation latency again.
    pub rounds_to_first_dedication: Option<u64>,
}

impl EvolutionAppReport {
    /// Serializes to a JSON value.
    pub fn to_value(&self) -> Value {
        let rounds = match self.rounds_to_first_dedication {
            Some(r) => Value::UInt(r),
            None => Value::Null,
        };
        Value::Object(vec![
            ("name".into(), Value::Str(self.name.clone())),
            ("coverage".into(), Value::UInt(self.coverage as u64)),
            ("coverage_delta".into(), Value::Int(self.coverage_delta)),
            (
                "injected_crashes".into(),
                Value::UInt(self.injected_crashes as u64),
            ),
            (
                "caught_regressions".into(),
                Value::UInt(self.caught_regressions as u64),
            ),
            (
                "missed_regressions".into(),
                Value::UInt(self.missed_regressions as u64),
            ),
            (
                "subspaces_carried".into(),
                Value::UInt(self.subspaces_carried as u64),
            ),
            (
                "subspaces_invalidated".into(),
                Value::UInt(self.subspaces_invalidated as u64),
            ),
            (
                "warm_reuse_ratio".into(),
                Value::Float(self.warm_reuse_ratio),
            ),
            ("rounds_to_first_dedication".into(), rounds),
        ])
    }
}

/// One version's longitudinal report across every app in the campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct EvolutionReport {
    /// The release this report covers (`0` = the base version).
    pub version: u64,
    /// Whether this version's campaign was warm-started.
    pub warm: bool,
    /// Per-app slices, in campaign input order.
    pub apps: Vec<EvolutionAppReport>,
}

impl EvolutionReport {
    /// Serializes to a JSON value.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("version".into(), Value::UInt(self.version)),
            ("warm".into(), Value::Bool(self.warm)),
            (
                "apps".into(),
                Value::Array(self.apps.iter().map(|a| a.to_value()).collect()),
            ),
        ])
    }
}

/// One finished release of a campaign sequence.
#[derive(Debug)]
pub struct VersionOutcome {
    /// The release index (`0` = base version).
    pub version: u64,
    /// The full campaign result (its
    /// [`coverage_report`](CampaignResult::coverage_report) is the
    /// determinism currency, per version).
    pub result: CampaignResult,
    /// The longitudinal report for this release.
    pub report: EvolutionReport,
}

/// First global round with a post-start subspace dedication.
///
/// Redistribution events synthesized while unwinding a retiring instance
/// carry `at == VirtualTime::ZERO` and are not dedications *earned* this
/// session, so they are excluded.
fn rounds_to_first_dedication(result: &CampaignResult, app: usize) -> Option<u64> {
    let tick = result.tick.as_millis().max(1);
    result.apps[app]
        .session
        .coordinator_events
        .iter()
        .filter_map(|e| match e {
            CoordinatorEvent::SubspaceDedicated { at, .. } if *at > VirtualTime::ZERO => {
                Some(at.as_millis().div_ceil(tick))
            }
            _ => None,
        })
        .min()
}

/// A release train held open one version at a time.
///
/// [`run_campaign_sequence`] is a loop over this: `begin_version` derives
/// the next release's apps (applying the sampled diff and re-validating
/// any carried [`WarmStart`]) and returns the campaign inputs;
/// `complete_version` folds the finished [`CampaignResult`] back in and
/// emits the release's [`EvolutionReport`]. External drivers (the
/// campaign service) use the split to interleave durable checkpoints with
/// version execution — a killed sequence resumes by replaying completed
/// versions and then replaying into the in-flight one.
#[derive(Debug)]
pub struct CampaignSequence {
    evolution: AppEvolution,
    versions: u64,
    warm: bool,
    /// Next version to begin (or the version in flight once begun).
    version: u64,
    /// Apps at `version` once begun; at `version - 1`'s state before.
    current: Vec<CampaignApp>,
    carried: Vec<Option<WarmStart>>,
    prev_coverage: Vec<Option<usize>>,
    /// Set between `begin_version` and `complete_version`.
    pending: Option<PendingVersion>,
}

#[derive(Debug)]
struct PendingVersion {
    diffs: Vec<VersionDiff>,
    reuse: Vec<WarmReuse>,
}

impl CampaignSequence {
    /// Starts a release train at `V0`. `base` holds the `V0` apps;
    /// `evolution` samples each release's diff (decorrelated per app name
    /// and version); `versions` is the total number of releases (so
    /// `versions = 1` runs only `V0`). With `warm = true` each release
    /// seeds its analyzers from the previous release's captured
    /// [`WarmStart`], re-validated against the diff; with `warm = false`
    /// every release starts cold.
    pub fn new(base: Vec<CampaignApp>, evolution: AppEvolution, versions: u64, warm: bool) -> Self {
        let n = base.len();
        CampaignSequence {
            evolution,
            versions,
            warm,
            version: 0,
            current: base,
            carried: vec![None; n],
            prev_coverage: vec![None; n],
            pending: None,
        }
    }

    /// The version `begin_version` will derive next (the in-flight
    /// version once begun).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Whether every release has completed.
    pub fn is_done(&self) -> bool {
        self.pending.is_none() && self.version >= self.versions
    }

    /// Derives the next release and returns its campaign inputs: the diff
    /// is applied to every app, carried warm bundles are re-validated
    /// against its touched surface, and the per-app session configs get
    /// their warm seed/capture knobs set.
    ///
    /// # Errors
    ///
    /// Returns [`TaoptError::Evolution`] when a diff op references state
    /// the previous release no longer has, or when called out of order
    /// (sequence done, or a begun version not yet completed).
    pub fn begin_version(&mut self) -> Result<Vec<CampaignApp>, TaoptError> {
        if self.pending.is_some() {
            return Err(TaoptError::Evolution(
                "previous version not completed".to_owned(),
            ));
        }
        if self.version >= self.versions {
            return Err(TaoptError::Evolution("sequence is done".to_owned()));
        }
        let mut diffs: Vec<VersionDiff> = Vec::with_capacity(self.current.len());
        let mut reuse: Vec<WarmReuse> = vec![WarmReuse::default(); self.current.len()];
        if self.version > 0 {
            for (i, entry) in self.current.iter_mut().enumerate() {
                let diff = self.evolution.diff(&entry.app, self.version - 1);
                let next = diff
                    .apply(&entry.app)
                    .map_err(|e| TaoptError::Evolution(e.to_string()))?;
                if let Some(bundle) = self.carried[i].take() {
                    self.carried[i] = Some(if diff.is_empty() {
                        // A re-release of the same binary: caches carry,
                        // exhausted territory is not re-dedicated (the
                        // pure-accelerator law keeps this byte-identical
                        // to cold).
                        bundle.accelerators_only()
                    } else {
                        let (survived, tally) = bundle.invalidate(&diff.touched(&entry.app));
                        reuse[i] = tally;
                        survived
                    });
                }
                entry.app = Arc::new(next);
                diffs.push(diff);
            }
        }
        self.pending = Some(PendingVersion { diffs, reuse });
        Ok(self
            .current
            .iter()
            .enumerate()
            .map(|(i, entry)| {
                let mut entry = entry.clone();
                entry.config.capture_warm_start = self.warm && entry.config.mode.uses_taopt();
                entry.config.warm_start = if self.warm {
                    self.carried[i].as_ref().map(|w| Arc::new(w.clone()))
                } else {
                    None
                };
                entry
            })
            .collect())
    }

    /// Folds a finished release's result back in (coverage baseline, next
    /// warm bundles) and emits its [`EvolutionReport`].
    ///
    /// # Panics
    ///
    /// Panics when no version is in flight (no matching `begin_version`).
    pub fn complete_version(&mut self, result: &CampaignResult) -> EvolutionReport {
        let pending = self.pending.take().expect("a version is in flight");
        let apps = result
            .apps
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let injected: BTreeSet<CrashSignature> = pending
                    .diffs
                    .get(i)
                    .map(|d| d.injected_signatures().into_iter().collect())
                    .unwrap_or_default();
                let caught = injected.intersection(&a.session.unique_crashes()).count();
                let coverage = a.session.union_coverage();
                EvolutionAppReport {
                    name: a.name.clone(),
                    coverage,
                    coverage_delta: self.prev_coverage[i]
                        .map(|p| coverage as i64 - p as i64)
                        .unwrap_or(0),
                    injected_crashes: injected.len(),
                    caught_regressions: caught,
                    missed_regressions: injected.len() - caught,
                    subspaces_carried: pending.reuse[i].carried,
                    subspaces_invalidated: pending.reuse[i].invalidated,
                    warm_reuse_ratio: pending.reuse[i].ratio(),
                    rounds_to_first_dedication: rounds_to_first_dedication(result, i),
                }
            })
            .collect();
        for (i, a) in result.apps.iter().enumerate() {
            self.prev_coverage[i] = Some(a.session.union_coverage());
            if self.warm {
                self.carried[i] = a.warm.clone();
            }
        }
        let report = EvolutionReport {
            version: self.version,
            warm: self.warm,
            apps,
        };
        self.version += 1;
        report
    }
}

/// Runs one campaign per release of an evolving app set (the closed-loop
/// driver over [`CampaignSequence`]).
///
/// # Errors
///
/// Returns [`TaoptError::Evolution`] when deriving a next version fails
/// (an op referencing state the previous release no longer has).
pub fn run_campaign_sequence(
    base: Vec<CampaignApp>,
    config: &CampaignConfig,
    evolution: &AppEvolution,
    versions: u64,
    warm: bool,
) -> Result<Vec<VersionOutcome>, TaoptError> {
    let mut sequence = CampaignSequence::new(base, evolution.clone(), versions, warm);
    let mut outcomes = Vec::with_capacity(versions as usize);
    while !sequence.is_done() {
        let version = sequence.version();
        let run_apps = sequence.begin_version()?;
        let result = run_campaign(run_apps, config);
        let report = sequence.complete_version(&result);
        outcomes.push(VersionOutcome {
            version,
            result,
            report,
        });
    }
    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{RunMode, SessionConfig};
    use taopt_app_sim::{generate_app, GeneratorConfig};
    use taopt_tools::ToolKind;
    use taopt_ui_model::VirtualDuration;

    fn quick_apps() -> Vec<CampaignApp> {
        let mut config = SessionConfig::new(ToolKind::Monkey, RunMode::TaoptDuration);
        config.instances = 3;
        config.duration = VirtualDuration::from_mins(8);
        config.tick = VirtualDuration::from_secs(10);
        config.analyzer.find_space.l_min = VirtualDuration::from_secs(45);
        config.analyzer.analysis_interval = VirtualDuration::from_secs(20);
        vec![CampaignApp {
            name: "seq".into(),
            app: Arc::new(generate_app(&GeneratorConfig::small("sess", 2)).unwrap()),
            config,
        }]
    }

    #[test]
    fn sequence_reports_regressions_and_is_deterministic() {
        let evo = AppEvolution::new(21);
        let cfg = CampaignConfig::default();
        let run =
            || run_campaign_sequence(quick_apps(), &cfg, &evo, 2, true).expect("sequence runs");
        let a = run();
        let b = run();
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].version, 0);
        assert_eq!(a[1].version, 1);
        // V0 has no diff, so nothing injected and no delta.
        assert_eq!(a[0].report.apps[0].injected_crashes, 0);
        assert_eq!(a[0].report.apps[0].coverage_delta, 0);
        // V1's diff injects exactly one regression crash.
        let v1 = &a[1].report.apps[0];
        assert_eq!(v1.injected_crashes, 1);
        assert_eq!(v1.caught_regressions + v1.missed_regressions, 1);
        assert!(v1.warm_reuse_ratio >= 0.0 && v1.warm_reuse_ratio <= 1.0);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.result.coverage_report(), y.result.coverage_report());
            assert_eq!(x.report, y.report);
        }
    }

    #[test]
    fn warm_rededicates_no_later_than_cold() {
        let evo = AppEvolution::new(21);
        let cfg = CampaignConfig::default();
        let warm = run_campaign_sequence(quick_apps(), &cfg, &evo, 2, true).expect("warm sequence");
        let cold =
            run_campaign_sequence(quick_apps(), &cfg, &evo, 2, false).expect("cold sequence");
        // Same release train either way (diffs depend only on the seed and
        // app, never on campaign outcomes).
        assert_eq!(
            warm[1].report.apps[0].injected_crashes,
            cold[1].report.apps[0].injected_crashes
        );
        let w = warm[1].report.apps[0]
            .rounds_to_first_dedication
            .unwrap_or(u64::MAX);
        let c = cold[1].report.apps[0]
            .rounds_to_first_dedication
            .unwrap_or(u64::MAX);
        assert!(w <= c, "warm {w} must not dedicate later than cold {c}");
        // Cold arms never report reuse.
        assert_eq!(cold[1].report.apps[0].subspaces_carried, 0);
        assert_eq!(cold[1].report.apps[0].warm_reuse_ratio, 1.0);
    }

    #[test]
    fn report_serializes_with_null_for_never_dedicated() {
        let report = EvolutionReport {
            version: 3,
            warm: true,
            apps: vec![EvolutionAppReport {
                name: "a".into(),
                coverage: 10,
                coverage_delta: -2,
                injected_crashes: 1,
                caught_regressions: 0,
                missed_regressions: 1,
                subspaces_carried: 2,
                subspaces_invalidated: 1,
                warm_reuse_ratio: 2.0 / 3.0,
                rounds_to_first_dedication: None,
            }],
        };
        let json = report.to_value().to_json_string();
        assert!(json.contains("\"rounds_to_first_dedication\":null"));
        assert!(json.contains("\"coverage_delta\":-2"));
        assert!(json.contains("\"warm\":true"));
    }
}
