//! The seam layers every session driver composes over [`super::step`].
//!
//! The reproduction has exactly three seams where a real testing cloud
//! can misbehave, and each is an explicit layer trait here (DESIGN.md
//! §12):
//!
//! * **device** — how drivers obtain/lose devices:
//!   [`taopt_device::DevicePool`], with [`taopt_device::PlainPool`] as the
//!   passthrough and [`taopt_chaos::FaultyPool`] as the fault-injecting
//!   wrapper (refusals, scheduled losses). Latency spikes are *decided* at
//!   this seam too (they are a device fault) but *applied* by the step,
//!   which owns the emulators.
//! * **bus** — how instance trace events reach the coordinator:
//!   [`BusTransport`] decides a [`taopt_chaos::EventFate`] per published
//!   event and the step repairs the surviving stream back into order with
//!   [`crate::streaming`]'s sequence layer, so the coordinator only ever
//!   sees a coordinator-view trace.
//! * **enforcement** — how coordinator block rules land on devices:
//!   [`Enforcement`], with [`DirectEnforcement`] wiring the coordinator
//!   straight to the device list (no retry machinery at all) and
//!   [`crate::resilience::BroadcastEnforcement`] routing every rule change
//!   through the failure-prone broadcast channel with idempotent retry.
//!
//! A [`StepLayers`] bundle picks one implementation per seam.
//! [`StepLayers::direct`] is the plain wiring — byte-identical to the
//! pre-layer runtime — and [`StepLayers::chaos`] is the chaotic wiring;
//! with an inert injector the chaotic wiring produces field-by-field the
//! same session result as the direct one (pinned by test), which is what
//! makes fault-free chaos runs a valid baseline.

use taopt_chaos::{EventFate, FaultInjector, FaultyLatency, RecoveryKind};
use taopt_device::{DeviceLatency, NoLatency};
use taopt_toller::{InstanceId, SharedBlockList};
use taopt_ui_model::VirtualTime;

use crate::resilience::BroadcastEnforcement;

/// The bus seam: decides what happens to each event an instance publishes
/// toward the coordinator. `lane` is a driver-scoped stream id (the
/// instance id, offset per app in a campaign) so decisions stay
/// deterministic and decorrelated across apps sharing one plan.
pub trait BusTransport: Send {
    /// The fate of event `seq` on `lane`.
    fn fate(&self, lane: u32, seq: u64, now: VirtualTime) -> EventFate;

    /// Called once per sequence gap the repair layer gave up on and
    /// skipped — the moment a drop is *healed* rather than suffered.
    fn gap_repaired(&self, lane: u32, now: VirtualTime);
}

/// The transparent bus: every event is delivered, nothing is recorded.
/// Exists so harnesses can exercise the full lane machinery (sequence
/// stamping + reorder repair) without a fault plan.
#[derive(Debug, Default, Clone, Copy)]
pub struct InertBus;

impl BusTransport for InertBus {
    fn fate(&self, _lane: u32, _seq: u64, _now: VirtualTime) -> EventFate {
        EventFate::Deliver
    }

    fn gap_repaired(&self, _lane: u32, _now: VirtualTime) {}
}

/// The chaotic bus: fates come from a [`FaultInjector`] and every healed
/// gap is recorded as a [`RecoveryKind::StreamRepaired`] recovery.
#[derive(Debug, Clone)]
pub struct FaultyBus {
    injector: FaultInjector,
}

impl FaultyBus {
    /// Wraps the injector's event seam.
    pub fn new(injector: FaultInjector) -> Self {
        FaultyBus { injector }
    }
}

impl BusTransport for FaultyBus {
    fn fate(&self, lane: u32, seq: u64, now: VirtualTime) -> EventFate {
        self.injector.event_fate(lane, seq, now)
    }

    fn gap_repaired(&self, lane: u32, now: VirtualTime) {
        self.injector
            .record_recovery(now, now, Some(lane), RecoveryKind::StreamRepaired);
    }
}

/// The enforcement seam: how the coordinator's block rules reach each
/// instance's device-side list.
pub trait Enforcement: Send {
    /// Wires up a freshly booted instance. Returns the list the
    /// coordinator should write its intent into: the device's own list
    /// (direct wiring) or a shadow that [`Enforcement::reconcile`]
    /// propagates.
    fn register(&mut self, instance: InstanceId, actual: SharedBlockList) -> SharedBlockList;

    /// Boot-time catch-up: pushes everything currently intended for
    /// `instance` toward its device, with one immediate delivery attempt
    /// per rule. Called right after registration. Implementations whose
    /// deliveries cannot fail land everything synchronously, so a fresh
    /// device starts its first round fully configured.
    fn provision(&mut self, instance: InstanceId, now: VirtualTime);

    /// Forgets a retired instance (undelivered rule changes die with it).
    fn unregister(&mut self, instance: InstanceId);

    /// One per-round reconciliation pass: propagate intended-vs-actual
    /// rule diffs, retrying failed deliveries. Returns operations applied.
    fn reconcile(&mut self, now: VirtualTime) -> usize;

    /// Deliveries that needed at least one retry before landing.
    fn reapplied(&self) -> usize;
}

/// The passthrough enforcement wiring: the coordinator writes rules
/// directly into the device-side list, so there is nothing to provision,
/// reconcile or retry — the inert path compiles down to no-ops.
#[derive(Debug, Default, Clone, Copy)]
pub struct DirectEnforcement;

impl Enforcement for DirectEnforcement {
    fn register(&mut self, _instance: InstanceId, actual: SharedBlockList) -> SharedBlockList {
        actual
    }

    fn provision(&mut self, _instance: InstanceId, _now: VirtualTime) {}

    fn unregister(&mut self, _instance: InstanceId) {}

    fn reconcile(&mut self, _now: VirtualTime) -> usize {
        0
    }

    fn reapplied(&self) -> usize {
        0
    }
}

/// One implementation per seam, bundled for [`super::SessionStep`].
///
/// The allocation half of the device seam is *not* held here — drivers
/// own their pool because device grants flow driver → step, not step →
/// driver — but its latency half is ([`DeviceLatency`]: spikes must be
/// applied inside the round, where the emulators live), along with the
/// injector handle for stamping recovery records on orphan re-dedication.
pub struct StepLayers {
    /// Bus seam; `None` skips lane bookkeeping entirely (the coordinator
    /// reads instance traces directly, the pre-layer fast path).
    pub(crate) bus: Option<Box<dyn BusTransport>>,
    /// Enforcement seam.
    pub(crate) enforcement: Box<dyn Enforcement>,
    /// Latency half of the device seam ([`NoLatency`] for plain wiring,
    /// [`FaultyLatency`] for chaos): the step applies what it decides.
    pub(crate) device: Box<dyn DeviceLatency>,
    /// Chaos handle for recovery records; `None` for plain wiring.
    pub(crate) injector: Option<FaultInjector>,
    /// Offset added to instance ids to form lane ids (decorrelates apps
    /// sharing one fault plan in a campaign).
    pub(crate) lane_base: u32,
}

impl std::fmt::Debug for StepLayers {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StepLayers")
            .field("bus", &self.bus.is_some())
            .field("chaotic", &self.injector.is_some())
            .field("lane_base", &self.lane_base)
            .finish()
    }
}

impl Default for StepLayers {
    fn default() -> Self {
        StepLayers::direct()
    }
}

impl StepLayers {
    /// The plain wiring: no bus decoration, direct enforcement, no
    /// injector. Produces the pre-layer runtime byte-for-byte.
    pub fn direct() -> Self {
        StepLayers {
            bus: None,
            enforcement: Box::new(DirectEnforcement),
            device: Box::new(NoLatency),
            injector: None,
            lane_base: 0,
        }
    }

    /// The chaotic wiring: every seam consults `injector`, with lanes
    /// offset by `lane_base`. An inert injector yields a run
    /// field-by-field identical to [`StepLayers::direct`].
    pub fn chaos(injector: &FaultInjector, lane_base: u32) -> Self {
        StepLayers {
            bus: Some(Box::new(FaultyBus::new(injector.clone()))),
            enforcement: Box::new(
                BroadcastEnforcement::new(injector.clone()).with_lane_base(lane_base),
            ),
            device: Box::new(FaultyLatency::new(injector.clone())),
            injector: Some(injector.clone()),
            lane_base,
        }
    }

    /// Records an orphaned-subspace re-dedication recovery, if a chaos
    /// log is attached.
    pub(crate) fn record_rededication(&self, since: VirtualTime, now: VirtualTime, heir_lane: u32) {
        if let Some(i) = &self.injector {
            i.record_recovery(
                since,
                now,
                Some(heir_lane),
                RecoveryKind::SubspaceRededicated,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taopt_toller::enforce::shared_block_list;
    use taopt_toller::EntrypointRule;
    use taopt_ui_model::AbstractScreenId;

    #[test]
    fn direct_enforcement_is_a_passthrough() {
        let mut e = DirectEnforcement;
        let actual = shared_block_list();
        let handed = e.register(InstanceId(0), actual.clone());
        handed
            .write()
            .block(EntrypointRule::new(AbstractScreenId(1), "w"));
        // Writing to the handed-back list IS writing to the device list.
        assert_eq!(actual.read().rules().len(), 1);
        assert_eq!(e.reconcile(VirtualTime::ZERO), 0);
        assert_eq!(e.reapplied(), 0);
    }

    #[test]
    fn inert_bus_delivers_everything() {
        let bus = InertBus;
        for seq in 0..64 {
            assert_eq!(bus.fate(3, seq, VirtualTime::ZERO), EventFate::Deliver);
        }
    }

    #[test]
    fn faulty_bus_with_inert_injector_delivers_everything() {
        let bus = FaultyBus::new(FaultInjector::inert(7));
        for seq in 0..64 {
            assert_eq!(bus.fate(3, seq, VirtualTime::ZERO), EventFate::Deliver);
        }
    }
}
