//! One app session, factored into a resumable round-step driver.
//!
//! [`SessionStep`] is the per-round loop of
//! [`crate::session::ParallelSession::run`] turned inside out: instead of
//! owning a [`taopt_device::DeviceFarm`] and looping to completion, it
//! exposes `demand()` / `grant()` / `advance_round()` / `finish()` so an
//! external scheduler (the serial [`crate::session::ParallelSession`]
//! driver or the campaign scheduler in [`crate::campaign::scheduler`]) can
//! interleave many sessions over one shared farm.
//!
//! Machine time is accounted by a private [`MachineMeter`] rather than the
//! farm, so per-app resource budgets keep working when the farm is shared
//! by the whole campaign. Driven by a farm of capacity `d_max`, the step
//! reproduces the legacy session loop event-for-event.
//!
//! Fault behaviour is not a separate runtime: a [`StepLayers`] bundle
//! plugs one implementation per seam (bus transport, enforcement channel,
//! plus the chaos handle for latency spikes and recovery records) into
//! the same round body, so plain, chaos and campaign runs differ only in
//! wiring (DESIGN.md §12).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use taopt_app_sim::{App, MethodId};
use taopt_device::DeviceId;
use taopt_telemetry::Counter;
use taopt_toller::{EntrypointRule, EventSender, InstanceId, InstrumentedInstance};
use taopt_ui_model::abstraction::abstract_hierarchy;
use taopt_ui_model::{ActivityId, ScreenId, Trace, VirtualDuration, VirtualTime};

use crate::analyzer::SubspaceId;
use crate::campaign::layers::StepLayers;
use crate::coordinator::TestCoordinator;
use crate::metrics::curves::CurvePoint;
use crate::session::{InstanceResult, RunMode, SessionConfig, SessionResult};
use crate::streaming::{BusLane, StreamStats};

/// Decorrelated per-instance seed stream (shared by every session flavor
/// so serial, chaos and campaign runs boot identical instances).
pub fn instance_seed(base_seed: u64, iid: InstanceId) -> u64 {
    base_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(
        (iid.0 as u64)
            .wrapping_mul(0x2545_f491_4f6c_dd1d)
            .wrapping_add(1),
    )
}

/// Per-app machine-time accounting, mirroring the farm's bookkeeping for
/// the devices this session holds.
#[derive(Debug, Default, Clone)]
pub struct MachineMeter {
    consumed: VirtualDuration,
    running: BTreeMap<DeviceId, VirtualTime>,
}

impl MachineMeter {
    /// Starts the meter for a device at `now`.
    pub fn start(&mut self, device: DeviceId, now: VirtualTime) {
        self.running.insert(device, now);
    }

    /// Stops the meter for a device at `now`, charging its runtime.
    pub fn stop(&mut self, device: DeviceId, now: VirtualTime) {
        if let Some(since) = self.running.remove(&device) {
            self.consumed += now.since(since);
        }
    }

    /// Machine time charged by stopped devices.
    pub fn consumed(&self) -> VirtualDuration {
        self.consumed
    }

    /// Machine time including still-running devices, as of `now`.
    pub fn consumed_as_of(&self, now: VirtualTime) -> VirtualDuration {
        let running: u64 = self
            .running
            .values()
            .map(|t| now.since(*t).as_millis())
            .sum();
        self.consumed + VirtualDuration::from_millis(running)
    }
}

/// A cheap, order-independent fingerprint of one session's progress,
/// taken at a round boundary.
///
/// This is the per-app slice of a campaign digest (DESIGN.md §13): it
/// pins everything scheduling can influence — the local clock, machine
/// meter, union size, instance churn, and per-instance trace offsets
/// (the positions feeding the coordinator's FindSpace analysis) — without
/// serializing any live state. Two deterministic runs of the same spec
/// agree on every field at every round boundary, so digest equality is
/// how a checkpoint restore proves its replay converged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepProgress {
    /// Rounds this session has advanced.
    pub round: u64,
    /// Local clock, in virtual ms.
    pub now_ms: u64,
    /// Machine time consumed as of the local clock, in virtual ms.
    pub machine_ms: u64,
    /// Methods in the union coverage set.
    pub union: usize,
    /// Instances already retired.
    pub finished_instances: usize,
    /// Next instance id to boot.
    pub next_instance: u32,
    /// Whether the termination condition was reached.
    pub done: bool,
    /// Per active instance, in boot order: `(instance id, device id,
    /// trace length)`.
    pub active: Vec<(u32, u64, u64)>,
}

/// What one round of a session produced for its scheduler.
#[derive(Debug)]
pub struct RoundOutcome {
    /// Devices released this round (stall deallocation); the driver must
    /// return them to the farm.
    pub released: Vec<DeviceId>,
    /// Whether the session reached its termination condition (duration or
    /// machine budget). Once true, the driver should call
    /// [`SessionStep::finish`].
    pub done: bool,
}

/// End-of-session payload: the result plus the devices still held.
#[derive(Debug)]
pub struct SessionFinish {
    /// The completed session result.
    pub result: SessionResult,
    /// Devices drained at the end; the driver must return them.
    pub released: Vec<DeviceId>,
    /// Confirmed subspaces left without a live owner (measured after the
    /// final repair pass, before the drain) — the liveness invariant.
    pub unresolved_orphans: usize,
    /// Bus-repair counters summed over every lane this session ran
    /// (all-zero when the bus layer was off or the plan stayed inert).
    pub stream: StreamStats,
    /// Enforcement deliveries that needed at least one retry (zero under
    /// direct wiring).
    pub enforcement_retries: usize,
    /// Learned analyzer state captured for the next version's campaign
    /// (present iff the config asked for it and the mode ran TaOPT).
    pub warm: Option<crate::warmstart::WarmStart>,
}

/// One live instance plus scheduling bookkeeping.
struct ActiveInstance {
    inst: InstrumentedInstance,
    device: DeviceId,
    allocated_at: VirtualTime,
    last_new_screen: VirtualTime,
    cover_events: Vec<(VirtualTime, MethodId)>,
    /// Activity-partition mode: screens this instance owns.
    owned_screens: Vec<ScreenId>,
    jump_cursor: usize,
    /// Trace events already forwarded to the campaign bus.
    forwarded: usize,
    /// Bus-seam lane state (present iff the layer bundle has a bus
    /// transport): the coordinator then analyzes the lane's repaired
    /// coordinator-view trace instead of the instance trace.
    bus: Option<BusLane>,
}

/// Activity-partition plan: round-robin activity ownership plus static
/// block rules (ParaAim-style baseline, §3.3).
pub(crate) struct ActivityPlan {
    /// Per-slot owned activities.
    owned: Vec<BTreeSet<ActivityId>>,
    /// Per-slot blocked entry rules (widgets leading to foreign
    /// activities).
    rules: Vec<Vec<EntrypointRule>>,
    /// Per-slot owned screens (jump targets).
    screens: Vec<Vec<ScreenId>>,
}

impl ActivityPlan {
    pub(crate) fn build(app: &App, slots: usize) -> Self {
        let activities: Vec<ActivityId> = app.activities().into_iter().collect();
        let mut owned = vec![BTreeSet::new(); slots];
        for (i, a) in activities.iter().enumerate() {
            owned[i % slots].insert(*a);
        }
        // Abstract ids of every screen (rendered once with zero visits).
        let abstract_of: BTreeMap<ScreenId, _> = app
            .screens()
            .map(|s| (s.id, abstract_hierarchy(&app.render_screen(s.id, 0)).id()))
            .collect();
        let mut rules = vec![Vec::new(); slots];
        let mut screens = vec![Vec::new(); slots];
        for (slot, owned_set) in owned.iter().enumerate() {
            for s in app.screens() {
                if owned_set.contains(&s.activity) {
                    screens[slot].push(s.id);
                }
                for a in &s.actions {
                    let leaves = a.targets.iter().any(|t| {
                        let target_activity = app.screen(t.screen).map(|sp| sp.activity);
                        target_activity
                            .map(|ta| !owned_set.contains(&ta))
                            .unwrap_or(false)
                    });
                    if leaves {
                        rules[slot].push(EntrypointRule::new(abstract_of[&s.id], &a.widget_rid));
                    }
                }
            }
        }
        ActivityPlan {
            owned,
            rules,
            screens,
        }
    }
}

/// A single app session advanced one lock-step round at a time by an
/// external device-granting driver.
pub struct SessionStep {
    app: Arc<App>,
    config: SessionConfig,
    coordinator: TestCoordinator,
    activity_plan: Option<ActivityPlan>,
    pats_queue: Vec<ScreenId>,
    pats_dispatched: BTreeSet<ScreenId>,
    active: Vec<ActiveInstance>,
    finished: Vec<InstanceResult>,
    next_instance: u32,
    union: BTreeSet<MethodId>,
    union_curve: Vec<CurvePoint>,
    /// Methods covered during instance boot (startup + auto-login),
    /// merged into the union at the next round boundary.
    pending_boot: Vec<(VirtualTime, MethodId)>,
    concurrency_timeline: Vec<(VirtualTime, usize)>,
    meter: MachineMeter,
    now: VirtualTime,
    budget: VirtualDuration,
    done: bool,
    started: bool,
    /// Resource mode: confirmed-subspace growth not yet granted.
    pending_growth: usize,
    /// Whether orphaned confirmed subspaces are re-dedicated each round
    /// (campaign behavior; the legacy serial session leaves them).
    repair_orphans: bool,
    publisher: Option<EventSender>,
    /// Seam layer bundle (bus transport, enforcement channel, chaos
    /// handle); [`StepLayers::direct`] unless a driver plugs in more.
    layers: StepLayers,
    /// Rounds advanced so far; keys per-round fault decisions (latency).
    round: u64,
    /// When each currently orphaned subspace became orphaned, so a repair
    /// can be recorded with its true recovery latency.
    orphaned_since: BTreeMap<SubspaceId, VirtualTime>,
    /// Bus-repair counters folded in from retired lanes.
    stream_total: StreamStats,
    round_counter: Counter,
    cover_counter: Counter,
    coordinator_errors: Counter,
}

impl std::fmt::Debug for SessionStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionStep")
            .field("mode", &self.config.mode)
            .field("now", &self.now)
            .field("active", &self.active.len())
            .field("finished", &self.finished.len())
            .field("done", &self.done)
            .finish()
    }
}

impl SessionStep {
    /// Creates a step for one app session. No devices are held until the
    /// driver grants some.
    pub fn new(app: Arc<App>, config: SessionConfig) -> Self {
        let telemetry = taopt_telemetry::global();
        let activity_plan = if config.mode == RunMode::ActivityPartition {
            Some(ActivityPlan::build(&app, config.instances))
        } else {
            None
        };
        let coordinator = match config.warm_start.as_deref() {
            Some(warm) if config.mode.uses_taopt() => {
                TestCoordinator::with_warm_start(config.analyzer.clone(), warm)
            }
            _ => TestCoordinator::new(config.analyzer.clone()),
        }
        .with_stall_timeout(config.stall_timeout);
        let budget = config.effective_budget();
        SessionStep {
            app,
            config,
            coordinator,
            activity_plan,
            pats_queue: Vec::new(),
            pats_dispatched: BTreeSet::new(),
            active: Vec::new(),
            finished: Vec::new(),
            next_instance: 0,
            union: BTreeSet::new(),
            union_curve: Vec::new(),
            pending_boot: Vec::new(),
            concurrency_timeline: Vec::new(),
            meter: MachineMeter::default(),
            now: VirtualTime::ZERO,
            budget,
            done: false,
            started: false,
            pending_growth: 0,
            repair_orphans: false,
            publisher: None,
            layers: StepLayers::direct(),
            round: 0,
            orphaned_since: BTreeMap::new(),
            stream_total: StreamStats::default(),
            round_counter: telemetry.counter("session_rounds_total"),
            cover_counter: telemetry.counter("cover_events_total"),
            coordinator_errors: telemetry.counter("coordinator_errors_total"),
        }
    }

    /// Enables per-round re-dedication of orphaned confirmed subspaces
    /// (used by the campaign scheduler, where devices can be killed).
    pub fn with_orphan_repair(mut self, repair: bool) -> Self {
        self.repair_orphans = repair;
        self
    }

    /// Publishes every trace event onto a campaign bus partition.
    pub fn with_publisher(mut self, publisher: EventSender) -> Self {
        self.publisher = Some(publisher);
        self
    }

    /// Plugs in a seam layer bundle ([`StepLayers::chaos`] for fault
    /// injection; the default is [`StepLayers::direct`]).
    pub fn with_layers(mut self, layers: StepLayers) -> Self {
        self.layers = layers;
        self
    }

    /// Threads the campaign-wide [`crate::campaign::ComputePool`] down
    /// to this step's coordinator/analyzer: batched ingestion schedules
    /// its analysis phase on the shared host budget instead of spawning
    /// per-call threads.
    pub fn with_compute(
        mut self,
        pool: std::sync::Arc<crate::campaign::pool::ComputePool>,
    ) -> Self {
        self.coordinator.set_compute(pool);
        self
    }

    /// The session's local clock (frozen while it holds no devices and is
    /// not being advanced).
    pub fn now(&self) -> VirtualTime {
        self.now
    }

    /// Whether the termination condition was reached.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Devices currently held.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Machine time consumed so far, as of the local clock.
    pub fn machine_time(&self) -> VirtualDuration {
        self.meter.consumed_as_of(self.now)
    }

    /// Fingerprints this session's progress (see [`StepProgress`]).
    pub fn progress(&self) -> StepProgress {
        StepProgress {
            round: self.round,
            now_ms: self.now.as_millis(),
            machine_ms: self.meter.consumed_as_of(self.now).as_millis(),
            union: self.union.len(),
            finished_instances: self.finished.len(),
            next_instance: self.next_instance,
            done: self.done,
            active: self
                .active
                .iter()
                .map(|a| {
                    (
                        a.inst.id().0,
                        a.device.0 as u64,
                        a.inst.trace().len() as u64,
                    )
                })
                .collect(),
        }
    }

    /// How many additional devices this session wants right now, honoring
    /// `d_max` and the mode's allocation policy.
    pub fn demand(&self) -> usize {
        if self.done {
            return 0;
        }
        let cap = self.config.instances.saturating_sub(self.active.len());
        match self.config.mode {
            RunMode::TaoptResource => {
                if !self.started {
                    return cap.min(1);
                }
                let mut want = self.pending_growth.min(cap);
                if self.active.is_empty() {
                    // Keep at least one explorer alive while budget remains.
                    want = want.max(cap.min(1));
                }
                want
            }
            _ => cap,
        }
    }

    /// Boots a new instance on a granted device at the local clock.
    /// Returns the booted instance's id (drivers use it to label
    /// replacement recoveries).
    pub fn grant(&mut self, device: DeviceId) -> InstanceId {
        debug_assert!(
            self.active.len() < self.config.instances,
            "grant beyond d_max"
        );
        self.started = true;
        self.pending_growth = self.pending_growth.saturating_sub(1);
        taopt_telemetry::global()
            .counter("instances_allocated_total")
            .inc();
        let iid = InstanceId(self.next_instance);
        self.next_instance += 1;
        let seed = instance_seed(self.config.seed, iid);
        let tool = self.config.tool.build(seed);
        let inst = InstrumentedInstance::boot_with(
            iid,
            device,
            Arc::clone(&self.app),
            tool,
            seed ^ 0xabcd,
            self.now,
            self.config.emulator,
        );
        let mut owned_screens = Vec::new();
        if let Some(plan) = &self.activity_plan {
            let slot = (iid.0 as usize) % plan.owned.len().max(1);
            let bl = inst.blocklist();
            let mut bl = bl.write();
            for r in &plan.rules[slot] {
                bl.block(r.clone());
            }
            owned_screens = plan.screens[slot].clone();
        }
        if self.config.mode.uses_taopt() {
            // The enforcement layer decides what the coordinator writes
            // into: the device list itself (direct wiring) or a shadow
            // reconciled through the broadcast channel. Provisioning then
            // gives every catch-up rule one immediate delivery attempt, so
            // under fault-free wiring a new device starts fully configured.
            let intent = self.layers.enforcement.register(iid, inst.blocklist());
            self.coordinator.register_instance(iid, intent);
            self.layers.enforcement.provision(iid, self.now);
        }
        // Startup (and auto-login) coverage happens at boot, before the
        // first tool step; account it like any other cover event.
        let boot_covered: Vec<(VirtualTime, MethodId)> = inst
            .emulator()
            .coverage()
            .covered()
            .iter()
            .map(|m| (self.now, *m))
            .collect();
        self.pending_boot.extend(boot_covered.iter().copied());
        self.meter.start(device, self.now);
        self.active.push(ActiveInstance {
            inst,
            device,
            allocated_at: self.now,
            last_new_screen: self.now,
            cover_events: boot_covered,
            owned_screens,
            jump_cursor: 0,
            forwarded: 0,
            bus: self.layers.bus.is_some().then(BusLane::new),
        });
        iid
    }

    /// Advances the session by one lock-step round of `tick`.
    pub fn advance_round(&mut self) -> RoundOutcome {
        self.now += self.config.tick;
        self.round += 1;
        self.round_counter.inc();
        self.concurrency_timeline
            .push((self.now, self.active.len()));

        // Device seam, latency half: spikes are decided behind the
        // [`taopt_device::DeviceLatency`] layer but applied here, where
        // the emulator clocks live — the device stalls before it runs
        // its round. The plain wiring decides `None` for every lane.
        for a in self.active.iter_mut() {
            let lane = self.layers.lane_base + a.inst.id().0;
            if let Some(extra) = self.layers.device.latency_spike(lane, self.round, self.now) {
                a.inst.emulator_mut().idle(extra);
            }
        }

        let deadline = if self.config.mode == RunMode::TaoptResource {
            self.now
        } else {
            // Never run past the wall-clock budget.
            self.now.min(VirtualTime::ZERO + self.config.duration)
        };

        // Step every active instance up to the round boundary, pooling
        // cover events so the union curve stays time-ordered across
        // instances within the round.
        let mut round_events: Vec<(VirtualTime, MethodId)> = std::mem::take(&mut self.pending_boot);
        for a in self.active.iter_mut() {
            let target = self.now.min(deadline);
            let reports = a.inst.run_until(target);
            for r in reports {
                if !r.newly_covered.is_empty() {
                    // Coverage growth counts as progress: the screen
                    // abstraction of the simulator is coarser than a
                    // real device's, so "no new abstract screen" alone
                    // would misfire while the tool still exercises new
                    // behaviour.
                    a.last_new_screen = r.time;
                }
                for m in &r.newly_covered {
                    a.cover_events.push((r.time, *m));
                    round_events.push((r.time, *m));
                }
                if r.new_screen {
                    a.last_new_screen = r.time;
                }
            }
        }
        if let Some(tx) = &self.publisher {
            for a in self.active.iter_mut() {
                for ev in &a.inst.trace().events()[a.forwarded..] {
                    let _ = tx.send(a.inst.id(), ev.clone());
                }
                a.forwarded = a.inst.trace().len();
            }
        }
        // Bus seam: push new trace events through the transport; the
        // lane repairs the survivors into the coordinator-view trace.
        if let Some(bus) = &self.layers.bus {
            for a in self.active.iter_mut() {
                if let Some(lane_state) = a.bus.as_mut() {
                    let lane = self.layers.lane_base + a.inst.id().0;
                    lane_state.pump(bus.as_ref(), lane, a.inst.trace(), self.now);
                }
            }
        }
        round_events.sort_by_key(|(t, _)| *t);
        self.cover_counter.add(round_events.len() as u64);
        let consumed = self.meter.consumed_as_of(self.now);
        for (t, m) in round_events {
            if self.union.insert(m) {
                self.union_curve.push(CurvePoint {
                    time: t,
                    covered: self.union.len(),
                    machine_time: consumed,
                });
            }
        }

        // TaOPT analysis + dedication.
        let mut newly_confirmed = 0usize;
        if self.config.mode.uses_taopt() {
            let _span = taopt_telemetry::global()
                .span("analysis")
                .at(self.now)
                .enter();
            if self.config.batched_ingestion {
                // Batched ingestion: one analyzer call for the whole
                // round, equivalent to the per-instance loop below
                // (golden-trace second arm pins the equality).
                let batch: Vec<(InstanceId, &Trace)> = self
                    .active
                    .iter()
                    .map(|a| {
                        // With the bus layer engaged the coordinator sees
                        // only what survived the transport, in repaired
                        // order.
                        let view = a
                            .bus
                            .as_ref()
                            .map(|lane| lane.coord_trace())
                            .unwrap_or_else(|| a.inst.trace());
                        (a.inst.id(), view)
                    })
                    .collect();
                match self.coordinator.process_traces(&batch, self.now) {
                    Ok(confirmed) => newly_confirmed += confirmed.len(),
                    // A dedication failure is an internal-invariant breach;
                    // the session degrades to uncoordinated exploration for
                    // this round instead of panicking.
                    Err(_) => self.coordinator_errors.inc(),
                }
            } else {
                for a in self.active.iter() {
                    // With the bus layer engaged the coordinator sees only
                    // what survived the transport, in repaired order.
                    let view = a
                        .bus
                        .as_ref()
                        .map(|lane| lane.coord_trace())
                        .unwrap_or_else(|| a.inst.trace());
                    match self.coordinator.process_trace(a.inst.id(), view, self.now) {
                        Ok(confirmed) => newly_confirmed += confirmed.len(),
                        // A dedication failure is an internal-invariant
                        // breach; the session degrades to uncoordinated
                        // exploration for this round instead of panicking.
                        Err(_) => self.coordinator_errors.inc(),
                    }
                }
            }
        }

        // PATS dispatch: the master (instance 0) feeds newly seen screens
        // to the queue; idle slaves jump to the next one.
        if self.config.mode == RunMode::PatsMasterSlave {
            if let Some(master) = self.active.iter().find(|a| a.inst.id().0 == 0) {
                for e in master.inst.trace().events() {
                    if self.pats_dispatched.insert(e.screen) {
                        self.pats_queue.push(e.screen);
                    }
                }
            }
            for a in self.active.iter_mut() {
                if a.inst.id().0 == 0 {
                    continue;
                }
                // A slave with no fresh screens for half the stall timeout
                // picks up the next dispatched target.
                if self.now.since(a.last_new_screen) >= self.config.stall_timeout / 2 {
                    if let Some(target) = self.pats_queue.pop() {
                        a.inst.jump_to(target);
                        a.last_new_screen = self.now;
                    }
                }
            }
        }

        // Stall handling.
        let mut released = Vec::new();
        match self.config.mode {
            RunMode::Baseline | RunMode::PatsMasterSlave => {}
            RunMode::ActivityPartition => {
                // Stalled instances jump to the next owned screen.
                for a in self.active.iter_mut() {
                    if self.now.since(a.last_new_screen) >= self.config.stall_timeout
                        && !a.owned_screens.is_empty()
                    {
                        let s = a.owned_screens[a.jump_cursor % a.owned_screens.len()];
                        a.jump_cursor += 1;
                        a.inst.jump_to(s);
                        a.last_new_screen = self.now;
                    }
                }
            }
            RunMode::TaoptDuration | RunMode::TaoptResource => {
                let mut i = 0;
                while i < self.active.len() {
                    if self
                        .coordinator
                        .should_deallocate(self.active[i].last_new_screen, self.now)
                    {
                        released.push(self.retire(i, self.now));
                    } else {
                        i += 1;
                    }
                }
            }
        }

        // Orphan repair: confirmed subspaces whose owner died without an
        // heir are re-dedicated to a live instance. `has_orphans` keeps
        // the common empty case allocation-free.
        if self.repair_orphans && self.config.mode.uses_taopt() && self.coordinator.has_orphans() {
            for sid in self.coordinator.orphaned_subspaces() {
                self.orphaned_since.entry(sid).or_insert(self.now);
            }
            for sid in self.coordinator.orphaned_subspaces() {
                if let Some(heir) = self.coordinator.rededicate(sid, self.now) {
                    let since = self.orphaned_since.remove(&sid).unwrap_or(self.now);
                    self.layers.record_rededication(
                        since,
                        self.now,
                        self.layers.lane_base + heir.0,
                    );
                }
            }
        }

        // Enforcement seam: propagate intended rules onto devices,
        // retrying failed broadcasts from previous rounds (a no-op under
        // direct wiring, where intent and device list are the same).
        if self.config.mode.uses_taopt() {
            self.layers.enforcement.reconcile(self.now);
        }

        // Termination + growth bookkeeping.
        self.done = match self.config.mode {
            RunMode::TaoptResource => self.meter.consumed_as_of(self.now) >= self.budget,
            _ => self.now >= VirtualTime::ZERO + self.config.duration,
        };
        if self.config.mode == RunMode::TaoptResource {
            // Grow on discovery; the driver grants between rounds.
            self.pending_growth = newly_confirmed;
        }

        RoundOutcome {
            released,
            done: self.done,
        }
    }

    /// Retires the instance running on `device` after the farm revoked or
    /// killed the slot. Machine time is charged up to the local clock.
    /// Returns false when no active instance holds the device.
    pub fn lose_device(&mut self, device: DeviceId) -> bool {
        let Some(idx) = self.active.iter().position(|a| a.device == device) else {
            return false;
        };
        let _ = self.retire(idx, self.now);
        true
    }

    /// Voluntarily gives back one device (lease revocation): the least
    /// recently productive instance retires and its device is returned.
    pub fn shrink_one(&mut self) -> Option<DeviceId> {
        let idx = self
            .active
            .iter()
            .enumerate()
            .min_by_key(|(_, a)| (a.last_new_screen, a.inst.id()))
            .map(|(i, _)| i)?;
        Some(self.retire(idx, self.now))
    }

    /// Finishes the session: final orphan repair, invariant measurement,
    /// drain of the remaining instances.
    pub fn finish(mut self) -> SessionFinish {
        let uses_taopt = self.config.mode.uses_taopt();
        if self.repair_orphans && uses_taopt {
            // Give orphans one last chance while instances are still
            // registered, then measure the invariant.
            for sid in self.coordinator.orphaned_subspaces() {
                let since = self.orphaned_since.remove(&sid).unwrap_or(self.now);
                if let Some(heir) = self.coordinator.rededicate(sid, self.now) {
                    self.layers.record_rededication(
                        since,
                        self.now,
                        self.layers.lane_base + heir.0,
                    );
                }
            }
        }
        let unresolved_orphans = if uses_taopt {
            self.coordinator.orphaned_subspaces().len()
        } else {
            0
        };
        // Capture the warm bundle *before* draining: retiring an instance
        // evicts its similarity-cache entries, and the bundle should carry
        // everything the campaign learned.
        let warm = (self.config.capture_warm_start && uses_taopt)
            .then(|| self.coordinator.analyzer().warm_start(self.union.len()));
        let end = self.now;
        let mut released = Vec::new();
        while !self.active.is_empty() {
            released.push(self.retire(0, end));
        }
        self.finished.sort_by_key(|r| r.instance);
        // The coordinator dies with the step: move the registry and the
        // decision log out instead of cloning them.
        let (tool, mode) = (self.config.tool, self.config.mode);
        let instances = std::mem::take(&mut self.finished);
        let union_curve = std::mem::take(&mut self.union_curve);
        let machine_time = self.meter.consumed();
        let concurrency_timeline = std::mem::take(&mut self.concurrency_timeline);
        let (subspaces, coordinator_events) = self.coordinator.into_report();
        let result = SessionResult {
            tool,
            mode,
            instances,
            union_curve,
            machine_time,
            wall_clock: end.since(VirtualTime::ZERO),
            subspaces,
            coordinator_events,
            concurrency_timeline,
        };
        SessionFinish {
            result,
            released,
            unresolved_orphans,
            stream: self.stream_total,
            enforcement_retries: self.layers.enforcement.reapplied(),
            warm,
        }
    }

    /// Removes `active[idx]`, settles it with the coordinator and records
    /// its result. Returns the freed device.
    fn retire(&mut self, idx: usize, now: VirtualTime) -> DeviceId {
        let mut a = self.active.swap_remove(idx);
        if let Some(tx) = &self.publisher {
            for ev in &a.inst.trace().events()[a.forwarded..] {
                let _ = tx.send(a.inst.id(), ev.clone());
            }
            a.forwarded = a.inst.trace().len();
        }
        if let Some(mut lane) = a.bus.take() {
            // Deliver everything still in flight, then fold the lane's
            // repair counters into the session total.
            lane.flush();
            self.stream_total = self.stream_total.merged(lane.stats());
        }
        self.layers.enforcement.unregister(a.inst.id());
        self.meter.stop(a.device, now);
        taopt_telemetry::global()
            .counter("instances_deallocated_total")
            .inc();
        let visited: BTreeSet<_> = a
            .inst
            .trace()
            .events()
            .iter()
            .map(|e| e.abstract_id)
            .collect();
        self.coordinator
            .unregister_instance_with_trace(a.inst.id(), &visited);
        let em = a.inst.emulator();
        self.finished.push(InstanceResult {
            instance: a.inst.id(),
            allocated_at: a.allocated_at,
            deallocated_at: now,
            covered: em.coverage().covered().clone(),
            cover_events: std::mem::take(&mut a.cover_events),
            crashes: em.crashes().unique_crashes().clone(),
            crash_occurrences: em.crashes().occurrences().to_vec(),
            device: a.device,
            trace: a.inst.trace().clone(),
        });
        a.device
    }
}
