//! Device lease bookkeeping for the campaign scheduler.
//!
//! The shared [`taopt_device::DeviceFarm`] hands out anonymous slots; the
//! [`LeaseLedger`] records which app holds each device so the scheduler
//! can enforce fairness, pick revocation donors, and — crucially for the
//! test suite — prove that no device is ever leased to two apps at once
//! (`conflicts() == 0` is asserted by `tests/campaign.rs`).

use std::collections::BTreeMap;

use taopt_device::DeviceId;
use taopt_telemetry::Counter;

/// Who holds which device, plus lease-churn counters.
#[derive(Debug)]
pub struct LeaseLedger {
    /// Device → app index. A device appears here from grant to
    /// release/kill.
    owner: BTreeMap<DeviceId, usize>,
    /// Per-app current holdings.
    holdings: Vec<usize>,
    grants: u64,
    releases: u64,
    kills: u64,
    conflicts: u64,
    grants_counter: Counter,
    conflicts_counter: Counter,
}

impl LeaseLedger {
    /// A ledger for `apps` apps.
    pub fn new(apps: usize) -> Self {
        let telemetry = taopt_telemetry::global();
        LeaseLedger {
            owner: BTreeMap::new(),
            holdings: vec![0; apps],
            grants: 0,
            releases: 0,
            kills: 0,
            conflicts: 0,
            grants_counter: telemetry.counter("campaign_lease_grants_total"),
            conflicts_counter: telemetry.counter("campaign_lease_conflicts_total"),
        }
    }

    /// Records a lease of `device` to `app`.
    pub fn grant(&mut self, app: usize, device: DeviceId) {
        self.grants += 1;
        self.grants_counter.inc();
        if self.owner.insert(device, app).is_some() {
            // Double allocation: the farm handed out a device that is
            // already on lease. This must never happen.
            self.conflicts += 1;
            self.conflicts_counter.inc();
        }
        self.holdings[app] += 1;
    }

    /// Records that `device` was returned. Returns the former holder.
    pub fn release(&mut self, device: DeviceId) -> Option<usize> {
        let app = self.owner.remove(&device)?;
        self.releases += 1;
        self.holdings[app] = self.holdings[app].saturating_sub(1);
        Some(app)
    }

    /// Records that `device` died. Returns the former holder.
    pub fn kill(&mut self, device: DeviceId) -> Option<usize> {
        let app = self.owner.remove(&device)?;
        self.kills += 1;
        self.holdings[app] = self.holdings[app].saturating_sub(1);
        Some(app)
    }

    /// Current holdings of `app`.
    pub fn holdings(&self, app: usize) -> usize {
        self.holdings[app]
    }

    /// Devices currently on lease, in device-id order (deterministic
    /// victim selection for scheduled kills).
    pub fn leased_devices(&self) -> Vec<DeviceId> {
        self.owner.keys().copied().collect()
    }

    /// Total devices currently on lease.
    pub fn total_leased(&self) -> usize {
        self.owner.len()
    }

    /// Every `(device, holder)` pair currently on lease, in device-id
    /// order (digest material for checkpoint verification).
    pub fn leases(&self) -> Vec<(DeviceId, usize)> {
        self.owner.iter().map(|(d, a)| (*d, *a)).collect()
    }

    /// Lifetime grants.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Lifetime releases (kills not included).
    pub fn releases(&self) -> u64 {
        self.releases
    }

    /// Lifetime kills.
    pub fn kills(&self) -> u64 {
        self.kills
    }

    /// Double-allocation events observed (must stay 0).
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_and_releases_balance() {
        let mut l = LeaseLedger::new(2);
        l.grant(0, DeviceId(1));
        l.grant(1, DeviceId(2));
        assert_eq!(l.holdings(0), 1);
        assert_eq!(l.total_leased(), 2);
        assert_eq!(l.release(DeviceId(1)), Some(0));
        assert_eq!(l.kill(DeviceId(2)), Some(1));
        assert_eq!(l.total_leased(), 0);
        assert_eq!(l.grants(), 2);
        assert_eq!(l.releases(), 1);
        assert_eq!(l.kills(), 1);
        assert_eq!(l.conflicts(), 0);
        assert_eq!(l.release(DeviceId(7)), None);
    }

    #[test]
    fn double_allocation_is_counted() {
        let mut l = LeaseLedger::new(2);
        l.grant(0, DeviceId(3));
        l.grant(1, DeviceId(3));
        assert_eq!(l.conflicts(), 1);
    }
}
