//! The campaign scheduler: N app sessions over one shared device farm.
//!
//! # Scheduling model
//!
//! The campaign advances in global lock-step rounds of length `tick`.
//! Each round has two phases:
//!
//! 1. **Parallel phase** — every *runnable* app (live, holding at least
//!    one device) advances its [`SessionStep`] by one round. Steps touch
//!    only their own state, so the campaign's persistent [`ComputePool`]
//!    (one `host_threads` budget built at [`Campaign::new`], shared with
//!    every app's phase-A analysis — no per-round thread spawns)
//!    executes them concurrently: threads claim step indices from the
//!    job's atomic cursor, and a claim that lands outside a thread's
//!    home lane counts as a steal. Each step also snapshots its device
//!    demand here, so the boundary need not recompute it.
//! 2. **Sequential boundary** — all shared-state decisions (farm
//!    allocation, lease grants and revocations, scheduled device kills,
//!    replacement retries, session completion) happen on the scheduler
//!    thread in ascending app-index order. Candidate *validation* is
//!    not such a decision — it reads only frozen per-instance traces —
//!    and runs in the parallel phase (DESIGN.md §16).
//!
//! # Determinism
//!
//! Byte-identical results regardless of worker count follow from the
//! phase split: parallel work is confined to disjoint per-app state, and
//! every decision that consumes a shared resource is made in the
//! boundary, whose iteration order is a pure function of round number and
//! app index. Thread timing can change *when* a step runs within a round
//! and which worker runs it (the steal count), but not any value that
//! feeds back into scheduling.
//!
//! # Leasing
//!
//! Between rounds each app reports its device demand
//! ([`SessionStep::demand`], which honors `d_max` and the mode's
//! allocation policy, merged with due [`ReplacementQueue`] retries).
//! Free devices are granted max-min fairly ([`fair_targets_from`] with a
//! rotating remainder). When the farm is exhausted and an app is starved
//! (zero devices, positive demand, positive fair share), the scheduler
//! revokes a device from the richest donor — over-target holders first,
//! otherwise any holder past `min_hold_rounds` — so every app eventually
//! runs even with fewer devices than apps.
//!
//! An app holding zero devices has a **frozen clock**: its virtual
//! session time does not advance while it waits, so queueing does not
//! burn its `l_p`/budget.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use taopt_app_sim::App;
use taopt_chaos::{FaultInjector, FaultPlan, FaultStats, FaultyPool, APP_LANE_SHIFT};
use taopt_device::{fair_targets_from, DeviceFarm, DevicePool, PlainPool, PoolDecision};
use taopt_ui_model::{Value, VirtualDuration, VirtualTime};

use crate::campaign::layers::StepLayers;
use crate::campaign::lease::LeaseLedger;
use crate::campaign::pool::ComputePool;
use crate::campaign::snapshot::{CampaignDigest, SlotDigest};
use crate::campaign::step::{RoundOutcome, SessionStep};
use crate::coordinator::CoordinatorEvent;
use crate::resilience::{ReplacementQueue, RetryPolicy};
use crate::session::{SessionConfig, SessionResult};
use crate::streaming::{CampaignBus, StreamStats};

/// A deterministic mid-campaign device kill: at the end of global round
/// `round`, the `victim % leased`-th currently leased device (in
/// device-id order) dies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillEvent {
    /// Global round after which the device dies.
    pub round: u64,
    /// Victim selector (index into the leased-device list, modulo its
    /// length).
    pub victim: u64,
}

/// One app entering a campaign.
#[derive(Debug, Clone)]
pub struct CampaignApp {
    /// Display name (report key).
    pub name: String,
    /// The app under test.
    pub app: Arc<App>,
    /// Its session configuration (`instances` is the app's `d_max`).
    pub config: SessionConfig,
}

/// Campaign-level knobs.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Worker threads for the parallel phase (1 = sequential).
    ///
    /// Deprecated alias: when [`CampaignConfig::host_threads`] is 0,
    /// a `workers` value > 1 is taken as the host-thread budget so old
    /// configs keep their parallelism. With `scoped_threads` it also
    /// sizes the legacy per-round scoped spawn.
    pub workers: usize,
    /// Host compute-thread budget shared by the whole campaign: the
    /// persistent [`ComputePool`] serving both round advancement and
    /// phase-A analysis is sized once from this. `0` = auto-detect
    /// ([`std::thread::available_parallelism`]).
    pub host_threads: usize,
    /// Use the legacy per-round `std::thread::scope` spawns instead of
    /// the persistent pool. Kept as the differential baseline: the farm
    /// bench measures the pool against it in-process, and the
    /// equivalence suites pin byte-identical results across both.
    pub scoped_threads: bool,
    /// Shared farm capacity; defaults to the sum of every app's `d_max`
    /// (uncontended).
    pub capacity: Option<usize>,
    /// Rounds a lease is protected from starvation revocation.
    pub min_hold_rounds: u64,
    /// Scheduled device kills.
    pub kills: Vec<KillEvent>,
    /// Optional per-app-partitioned event bus; when set, every trace
    /// event is published on the app's partition.
    pub bus: Option<CampaignBus>,
    /// Optional fault plan: when set, the whole campaign runs under
    /// deterministic fault injection — the shared farm is wrapped in a
    /// [`FaultyPool`] (allocation refusals, rate-planned device losses)
    /// and every app's step gets the chaotic [`StepLayers`] on its own
    /// lane range (bus fates, latency spikes, enforcement failures).
    pub faults: Option<FaultPlan>,
    /// Hard stop (defensive; never reached by a healthy campaign).
    pub max_rounds: u64,
}

impl CampaignConfig {
    /// The host-thread budget this config resolves to: `host_threads`
    /// when set; else a legacy `workers > 1` value; else auto-detect.
    pub fn effective_host_threads(&self) -> usize {
        if self.host_threads > 0 {
            self.host_threads
        } else if self.workers > 1 {
            self.workers
        } else {
            crate::campaign::pool::auto_threads()
        }
    }
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            workers: 1,
            host_threads: 0,
            scoped_threads: false,
            capacity: None,
            min_hold_rounds: 3,
            kills: Vec::new(),
            bus: None,
            faults: None,
            max_rounds: 1_000_000,
        }
    }
}

/// Per-app campaign outcome.
#[derive(Debug)]
pub struct AppReport {
    /// App name.
    pub name: String,
    /// The completed session result.
    pub session: SessionResult,
    /// Lost devices successfully replaced.
    pub replacements: usize,
    /// Devices killed under this app.
    pub devices_lost: usize,
    /// Confirmed subspaces left without a live owner at the end.
    pub unresolved_orphans: usize,
    /// Bus-repair counters across this app's instances (all zero without
    /// a fault plan).
    pub stream: StreamStats,
    /// Enforcement deliveries that needed at least one retry.
    pub enforcement_retries: usize,
    /// Global rounds this app sat with zero devices while unfinished.
    pub wait_rounds: u64,
    /// Global round at which the app finished.
    pub finished_round: u64,
    /// Learned analyzer state captured for the next version's campaign
    /// (present iff the app's config set `capture_warm_start` and its
    /// mode ran TaOPT). Deliberately excluded from
    /// [`CampaignResult::coverage_report`]: the bundle is an input to the
    /// *next* campaign, not part of this one's compared outcome.
    pub warm: Option<crate::warmstart::WarmStart>,
}

/// The complete outcome of a campaign run.
#[derive(Debug)]
pub struct CampaignResult {
    /// Per-app reports, in input order.
    pub apps: Vec<AppReport>,
    /// Global rounds executed.
    pub rounds: u64,
    /// The global round length.
    pub tick: VirtualDuration,
    /// Campaign wall-clock: `rounds × tick` of shared-farm time.
    pub wall_clock: VirtualDuration,
    /// Total machine time across apps (sum of session meters).
    pub machine_time: VirtualDuration,
    /// Shared farm capacity.
    pub capacity: usize,
    /// Peak devices simultaneously leased.
    pub peak_active: usize,
    /// Lease grants issued.
    pub grants: u64,
    /// Starvation revocations performed.
    pub revocations: u64,
    /// Double-allocation events observed (must be 0).
    pub lease_conflicts: u64,
    /// Devices still allocated in the farm after the drain (must be 0).
    pub farm_active_at_end: usize,
    /// Work-steal count (not deterministic across worker counts; excluded
    /// from [`CampaignResult::coverage_report`]).
    pub steals: u64,
    /// Aggregated fault/recovery statistics when a fault plan was set.
    /// Order-independent counts only — the fault *log*'s interleaving is
    /// thread-timing-dependent, so it stays out of compared reports.
    pub fault_stats: Option<FaultStats>,
    /// Host-side milliseconds spent (informational only).
    pub host_ms: u64,
}

impl CampaignResult {
    /// Union coverage summed over apps.
    pub fn total_coverage(&self) -> usize {
        self.apps.iter().map(|a| a.session.union_coverage()).sum()
    }

    /// Canonical per-app coverage report as a JSON string.
    ///
    /// Contains everything scheduling can influence — per-app coverage,
    /// per-instance results, curves, machine/wall clocks, lease churn —
    /// and nothing timing-dependent (no steal counts, no host time), so
    /// two runs are equivalent iff their reports are byte-identical.
    pub fn coverage_report(&self) -> String {
        let apps: Vec<Value> = self
            .apps
            .iter()
            .map(|a| {
                let instances: Vec<Value> = a
                    .session
                    .instances
                    .iter()
                    .map(|i| {
                        Value::Object(vec![
                            ("instance".to_owned(), Value::UInt(i.instance.0 as u64)),
                            ("device".to_owned(), Value::UInt(i.device.0 as u64)),
                            (
                                "allocated_ms".to_owned(),
                                Value::UInt(i.allocated_at.as_millis()),
                            ),
                            (
                                "deallocated_ms".to_owned(),
                                Value::UInt(i.deallocated_at.as_millis()),
                            ),
                            ("covered".to_owned(), Value::UInt(i.covered.len() as u64)),
                            (
                                "cover_events".to_owned(),
                                Value::UInt(i.cover_events.len() as u64),
                            ),
                            ("crashes".to_owned(), Value::UInt(i.crashes.len() as u64)),
                            ("trace_len".to_owned(), Value::UInt(i.trace.len() as u64)),
                        ])
                    })
                    .collect();
                let curve: Vec<Value> = a
                    .session
                    .union_curve
                    .iter()
                    .map(|p| {
                        Value::Array(vec![
                            Value::UInt(p.time.as_millis()),
                            Value::UInt(p.covered as u64),
                            Value::UInt(p.machine_time.as_millis()),
                        ])
                    })
                    .collect();
                let dedications = a
                    .session
                    .coordinator_events
                    .iter()
                    .filter(|e| matches!(e, CoordinatorEvent::SubspaceDedicated { .. }))
                    .count();
                Value::Object(vec![
                    ("name".to_owned(), Value::Str(a.name.clone())),
                    (
                        "coverage".to_owned(),
                        Value::UInt(a.session.union_coverage() as u64),
                    ),
                    (
                        "crashes".to_owned(),
                        Value::UInt(a.session.unique_crashes().len() as u64),
                    ),
                    (
                        "machine_ms".to_owned(),
                        Value::UInt(a.session.machine_time.as_millis()),
                    ),
                    (
                        "wall_ms".to_owned(),
                        Value::UInt(a.session.wall_clock.as_millis()),
                    ),
                    (
                        "subspaces".to_owned(),
                        Value::UInt(a.session.subspaces.len() as u64),
                    ),
                    (
                        "confirmed".to_owned(),
                        Value::UInt(
                            a.session.subspaces.iter().filter(|s| s.confirmed).count() as u64
                        ),
                    ),
                    ("dedications".to_owned(), Value::UInt(dedications as u64)),
                    (
                        "unresolved_orphans".to_owned(),
                        Value::UInt(a.unresolved_orphans as u64),
                    ),
                    (
                        "devices_lost".to_owned(),
                        Value::UInt(a.devices_lost as u64),
                    ),
                    (
                        "replacements".to_owned(),
                        Value::UInt(a.replacements as u64),
                    ),
                    ("stream_gaps".to_owned(), Value::UInt(a.stream.gaps as u64)),
                    (
                        "stream_duplicates".to_owned(),
                        Value::UInt(a.stream.duplicates as u64),
                    ),
                    (
                        "stream_reordered".to_owned(),
                        Value::UInt(a.stream.reordered as u64),
                    ),
                    (
                        "enforcement_retries".to_owned(),
                        Value::UInt(a.enforcement_retries as u64),
                    ),
                    ("wait_rounds".to_owned(), Value::UInt(a.wait_rounds)),
                    ("finished_round".to_owned(), Value::UInt(a.finished_round)),
                    ("instances".to_owned(), Value::Array(instances)),
                    ("curve".to_owned(), Value::Array(curve)),
                ])
            })
            .collect();
        Value::Object(vec![
            ("capacity".to_owned(), Value::UInt(self.capacity as u64)),
            ("rounds".to_owned(), Value::UInt(self.rounds)),
            (
                "wall_ms".to_owned(),
                Value::UInt(self.wall_clock.as_millis()),
            ),
            (
                "machine_ms".to_owned(),
                Value::UInt(self.machine_time.as_millis()),
            ),
            (
                "peak_active".to_owned(),
                Value::UInt(self.peak_active as u64),
            ),
            ("grants".to_owned(), Value::UInt(self.grants)),
            ("revocations".to_owned(), Value::UInt(self.revocations)),
            (
                "lease_conflicts".to_owned(),
                Value::UInt(self.lease_conflicts),
            ),
            ("apps".to_owned(), Value::Array(apps)),
        ])
        .to_json_string()
    }
}

/// One app's scheduling state.
struct Slot {
    name: String,
    d_max: usize,
    /// `Some` while the app is live; taken by `finish`.
    step: Option<SessionStep>,
    queue: ReplacementQueue,
    outcome: Option<RoundOutcome>,
    /// Device demand captured right after the step's round in the
    /// parallel phase (boundary prework, DESIGN.md §16): `demand()` is a
    /// pure read of step state, and nothing between the parallel phase
    /// and the leasing boundary changes it except a boundary-2 device
    /// kill, which clears the snapshot. Consumed (`take`) every leasing
    /// boundary so a stale value can never leak into a later round.
    demand_snapshot: Option<usize>,
    done: bool,
    last_grant_round: u64,
    wait_rounds: u64,
    replacements: usize,
    devices_lost: usize,
    report: Option<AppReport>,
}

/// A campaign paused between rounds: the round loop of [`run_campaign`]
/// turned inside out, one [`Campaign::advance_round`] call at a time.
///
/// External drivers (the campaign service) use this to interleave
/// checkpointing with execution: construct with [`Campaign::new`], call
/// [`Campaign::advance_round`] until it returns `false`, take a
/// [`Campaign::digest`] at any boundary, then [`Campaign::finish`]. The
/// sequence is exactly the body of [`run_campaign`], so driving a
/// campaign stepwise — or rebuilding one from its spec and replaying to
/// a checkpointed round — produces byte-identical results at any worker
/// count.
pub struct Campaign {
    /// Shared with in-flight pool tasks during the parallel phase (the
    /// pool requires owned `'static` jobs), exclusively ours at every
    /// boundary — [`ComputePool::run`] returns only after all tasks
    /// finish and drop their clones.
    slots: Arc<Vec<Mutex<Slot>>>,
    ledger: LeaseLedger,
    pool: Box<dyn DevicePool>,
    /// The campaign-wide host compute budget (tentpole of DESIGN.md
    /// §16): sized once from the config, serves both step advancement
    /// and every analyzer's phase A.
    compute: Arc<ComputePool>,
    injector: Option<FaultInjector>,
    kills_by_round: BTreeMap<u64, Vec<u64>>,
    steals: Arc<AtomicU64>,
    revocations: u64,
    round: u64,
    tick: VirtualDuration,
    capacity: usize,
    workers: usize,
    scoped_threads: bool,
    min_hold_rounds: u64,
    max_rounds: u64,
    host_start: std::time::Instant,
    rounds_counter: taopt_telemetry::Counter,
    round_host_us: taopt_telemetry::Histogram,
    steals_counter: taopt_telemetry::Counter,
    revocations_counter: taopt_telemetry::Counter,
    kills_counter: taopt_telemetry::Counter,
    replacements_counter: taopt_telemetry::Counter,
    active_apps_gauge: taopt_telemetry::Gauge,
}

impl std::fmt::Debug for Campaign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Campaign")
            .field("apps", &self.slots.len())
            .field("round", &self.round)
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl Campaign {
    /// Sets up a campaign and performs the initial leasing boundary.
    pub fn new(apps: Vec<CampaignApp>, config: &CampaignConfig) -> Self {
        assert!(!apps.is_empty(), "campaign needs at least one app");
        let host_start = std::time::Instant::now();
        let telemetry = taopt_telemetry::global();
        telemetry.counter("campaigns_started_total").inc();

        let workers = config.workers.max(1);
        // One persistent host budget for the whole campaign. The legacy
        // scoped-thread baseline spawns per round instead, so it gets an
        // inert budget-1 pool (no idle workers).
        let compute = ComputePool::new(if config.scoped_threads {
            1
        } else {
            config.effective_host_threads()
        });
        let tick = apps.iter().map(|a| a.config.tick).max().expect("non-empty");
        let total_want: usize = apps.iter().map(|a| a.config.instances).sum();
        let capacity = config.capacity.unwrap_or(total_want).max(1);
        let injector = config
            .faults
            .as_ref()
            .map(|p| FaultInjector::new(p.clone()));
        let pool: Box<dyn DevicePool> = match &injector {
            Some(inj) => Box::new(FaultyPool::new(DeviceFarm::new(capacity), inj.clone())),
            None => Box::new(PlainPool::new(capacity)),
        };
        let ledger = LeaseLedger::new(apps.len());
        let retry = RetryPolicy {
            max_attempts: 6,
            backoff: tick,
        };
        let slots: Vec<Mutex<Slot>> = apps
            .into_iter()
            .enumerate()
            .map(|(i, a)| {
                let d_max = a.config.instances;
                assert!(
                    d_max < (1usize << APP_LANE_SHIFT),
                    "app d_max must fit below the per-app lane range"
                );
                let mut step = SessionStep::new(a.app, a.config).with_orphan_repair(true);
                if !config.scoped_threads {
                    step = step.with_compute(Arc::clone(&compute));
                }
                if let Some(inj) = &injector {
                    step = step.with_layers(StepLayers::chaos(inj, (i as u32) << APP_LANE_SHIFT));
                }
                if let Some(bus) = &config.bus {
                    step = step.with_publisher(bus.sender(i));
                }
                Mutex::new(Slot {
                    name: a.name,
                    d_max,
                    step: Some(step),
                    queue: ReplacementQueue::new(retry),
                    outcome: None,
                    demand_snapshot: None,
                    done: false,
                    last_grant_round: 0,
                    wait_rounds: 0,
                    replacements: 0,
                    devices_lost: 0,
                    report: None,
                })
            })
            .collect();

        let mut kills_by_round: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for k in &config.kills {
            kills_by_round.entry(k.round).or_default().push(k.victim);
        }

        let mut campaign = Campaign {
            slots: Arc::new(slots),
            ledger,
            pool,
            compute,
            injector,
            kills_by_round,
            steals: Arc::new(AtomicU64::new(0)),
            revocations: 0,
            round: 0,
            tick,
            capacity,
            workers,
            scoped_threads: config.scoped_threads,
            min_hold_rounds: config.min_hold_rounds,
            max_rounds: config.max_rounds,
            host_start,
            rounds_counter: telemetry.counter("campaign_rounds_total"),
            round_host_us: telemetry.histogram("campaign_round_host_us"),
            steals_counter: telemetry.counter("campaign_steals_total"),
            revocations_counter: telemetry.counter("campaign_lease_revocations_total"),
            kills_counter: telemetry.counter("campaign_device_kills_total"),
            replacements_counter: telemetry.counter("campaign_replacements_total"),
            active_apps_gauge: telemetry.gauge("campaign_active_apps"),
        };

        // Initial leasing.
        lease_boundary(
            &campaign.slots,
            &mut campaign.ledger,
            campaign.pool.as_mut(),
            campaign.injector.as_ref(),
            campaign.round,
            VirtualTime::ZERO,
            campaign.min_hold_rounds,
            &mut campaign.revocations,
            &campaign.revocations_counter,
            &campaign.replacements_counter,
        );
        campaign
    }

    /// Global rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Whether any app is still live (unfinished).
    pub fn is_live(&self) -> bool {
        self.slots.iter().any(|s| s.lock().step.is_some())
    }

    /// Advances the campaign one global round. Returns `false` once no
    /// further round can run (all apps finished, nothing runnable, or
    /// the `max_rounds` stop) — after which the driver must call
    /// [`Campaign::finish`].
    pub fn advance_round(&mut self) -> bool {
        let host_timer = self.round_host_us.timer();
        let mut runnable: Vec<usize> = Vec::new();
        let mut live = 0usize;
        for (i, slot) in self.slots.iter().enumerate() {
            let s = &mut *slot.lock();
            if let Some(step) = s.step.as_ref() {
                live += 1;
                if step.active_count() > 0 {
                    runnable.push(i);
                } else {
                    s.wait_rounds += 1;
                }
            }
        }
        self.active_apps_gauge.set(live as i64);
        if live == 0 {
            return false;
        }
        if runnable.is_empty() {
            // Unreachable for a healthy scheduler: the boundary below
            // always leaves at least one live app holding a device.
            return false;
        }
        self.round += 1;
        self.rounds_counter.inc();

        advance_parallel(
            &self.slots,
            runnable.clone(),
            &self.compute,
            self.scoped_threads,
            self.workers,
            &self.steals,
        );

        let global_now = VirtualTime::ZERO + self.tick * self.round;

        // Boundary 1: stall-released devices back to the farm.
        for &i in &runnable {
            let s = &mut *self.slots[i].lock();
            let out = s.outcome.take().expect("step advanced this round");
            s.done = out.done;
            for d in out.released {
                self.ledger.release(d);
                self.pool.release(d, global_now);
            }
        }

        // Boundary 2: scheduled device kills, then rate-planned fault
        // losses (empty without a fault plan). Both go through the same
        // lease-kill → step-loss → replacement-queue path.
        if let Some(victims) = self.kills_by_round.remove(&self.round) {
            for v in victims {
                let leased = self.ledger.leased_devices();
                if leased.is_empty() {
                    break;
                }
                let d = leased[(v as usize) % leased.len()];
                let app = self.ledger.kill(d).expect("device was leased");
                self.pool.kill(d, global_now);
                self.kills_counter.inc();
                let s = &mut *self.slots[app].lock();
                if let Some(step) = s.step.as_mut() {
                    step.lose_device(d);
                }
                // The loss changes what the step will ask for, so the
                // parallel-phase demand snapshot is stale.
                s.demand_snapshot = None;
                s.devices_lost += 1;
                s.queue.device_lost(global_now);
            }
        }
        for d in self.pool.round_losses(self.round, global_now) {
            let app = self.ledger.kill(d).expect("active device is leased");
            self.pool.kill(d, global_now);
            self.kills_counter.inc();
            let s = &mut *self.slots[app].lock();
            if let Some(step) = s.step.as_mut() {
                step.lose_device(d);
            }
            s.demand_snapshot = None;
            s.devices_lost += 1;
            s.queue.device_lost(global_now);
        }

        // Boundary 3: finish apps that reached their termination
        // condition.
        for &i in &runnable {
            let s = &mut *self.slots[i].lock();
            if s.done && s.report.is_none() {
                let step = s.step.take().expect("live app has a step");
                let fin = step.finish();
                for d in fin.released {
                    self.ledger.release(d);
                    self.pool.release(d, global_now);
                }
                s.report = Some(AppReport {
                    name: s.name.clone(),
                    session: fin.result,
                    replacements: s.replacements,
                    devices_lost: s.devices_lost,
                    unresolved_orphans: fin.unresolved_orphans,
                    stream: fin.stream,
                    enforcement_retries: fin.enforcement_retries,
                    wait_rounds: s.wait_rounds,
                    finished_round: self.round,
                    warm: fin.warm,
                });
            }
        }

        if self.round >= self.max_rounds {
            if let Some(t0) = host_timer {
                self.round_host_us.record(t0.elapsed().as_micros() as u64);
            }
            return false;
        }

        // Boundary 4: leasing for the next round.
        lease_boundary(
            &self.slots,
            &mut self.ledger,
            self.pool.as_mut(),
            self.injector.as_ref(),
            self.round,
            global_now,
            self.min_hold_rounds,
            &mut self.revocations,
            &self.revocations_counter,
            &self.replacements_counter,
        );
        if let Some(t0) = host_timer {
            self.round_host_us.record(t0.elapsed().as_micros() as u64);
        }
        true
    }

    /// Fingerprints the campaign's logical state at the current round
    /// boundary (see [`CampaignDigest`]). Every field is deterministic
    /// for a fixed spec regardless of worker count, so digests taken at
    /// the same round by an original run and a checkpoint replay must be
    /// equal.
    pub fn digest(&mut self) -> CampaignDigest {
        let fault_stats = self.injector.as_ref().map(|i| i.stats());
        let slots = self
            .slots
            .iter()
            .map(|slot| {
                let s = slot.lock();
                SlotDigest {
                    name: s.name.clone(),
                    progress: s.step.as_ref().map(|step| step.progress()),
                    wait_rounds: s.wait_rounds,
                    replacements: s.replacements as u64,
                    devices_lost: s.devices_lost as u64,
                }
            })
            .collect();
        CampaignDigest {
            round: self.round,
            slots,
            leased: self
                .ledger
                .leases()
                .into_iter()
                .map(|(d, a)| (d.0 as u64, a as u64))
                .collect(),
            grants: self.ledger.grants(),
            releases: self.ledger.releases(),
            kills: self.ledger.kills(),
            conflicts: self.ledger.conflicts(),
            pool_active: self.pool.active_count() as u64,
            pool_lost: self.pool.lost_count() as u64,
            pool_peak: self.pool.peak_active() as u64,
            revocations: self.revocations,
            faults_injected: fault_stats
                .as_ref()
                .map_or(0, |s| s.total_injected() as u64),
            faults_recovered: fault_stats
                .as_ref()
                .map_or(0, |s| s.total_recovered() as u64),
        }
    }

    /// Finishes the campaign: drains any still-live apps and assembles
    /// the result.
    pub fn finish(mut self) -> CampaignResult {
        self.steals_counter.add(self.steals.load(Ordering::Relaxed));
        self.active_apps_gauge.set(0);

        // Drain any still-live apps (max_rounds stop): finish them as-is.
        let end_now = VirtualTime::ZERO + self.tick * self.round;
        let mut reports: Vec<AppReport> = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let s = &mut *slot.lock();
            if let Some(step) = s.step.take() {
                let fin = step.finish();
                for d in fin.released {
                    self.ledger.release(d);
                    self.pool.release(d, end_now);
                }
                s.report = Some(AppReport {
                    name: s.name.clone(),
                    session: fin.result,
                    replacements: s.replacements,
                    devices_lost: s.devices_lost,
                    unresolved_orphans: fin.unresolved_orphans,
                    stream: fin.stream,
                    enforcement_retries: fin.enforcement_retries,
                    wait_rounds: s.wait_rounds,
                    finished_round: self.round,
                    warm: fin.warm,
                });
            }
            reports.push(s.report.take().expect("every app finished"));
        }

        let machine_time = reports
            .iter()
            .fold(VirtualDuration::ZERO, |acc, r| acc + r.session.machine_time);
        CampaignResult {
            rounds: self.round,
            tick: self.tick,
            wall_clock: self.tick * self.round,
            machine_time,
            capacity: self.capacity,
            peak_active: self.pool.peak_active(),
            grants: self.ledger.grants(),
            revocations: self.revocations,
            lease_conflicts: self.ledger.conflicts(),
            farm_active_at_end: self.pool.active_count(),
            steals: self.steals.load(Ordering::Relaxed),
            fault_stats: self.injector.as_ref().map(|i| i.stats()),
            host_ms: self.host_start.elapsed().as_millis() as u64,
            apps: reports,
        }
    }
}

/// Runs a campaign to completion.
///
/// Deterministic for a fixed set of apps, seeds and [`CampaignConfig`]
/// (excluding `workers`, which must not change results — see the module
/// docs and `tests/campaign.rs`).
pub fn run_campaign(apps: Vec<CampaignApp>, config: &CampaignConfig) -> CampaignResult {
    let mut campaign = Campaign::new(apps, config);
    while campaign.advance_round() {}
    campaign.finish()
}

/// Advances one runnable slot's step and captures the boundary prework:
/// the round outcome plus a demand snapshot the leasing boundary can
/// consume without re-walking step state (DESIGN.md §16).
fn advance_slot(slot: &Mutex<Slot>) {
    let s = &mut *slot.lock();
    let step = s.step.as_mut().expect("runnable app has a step");
    let out = step.advance_round();
    let demand = step.demand();
    s.outcome = Some(out);
    s.demand_snapshot = Some(demand);
}

/// Parallel phase: advance every runnable step by one round. Steps
/// touch only their own state, so execution order cannot affect
/// results.
///
/// The default path hands the batch to the campaign's persistent
/// [`ComputePool`]; `scoped_threads` keeps the old per-round
/// `std::thread::scope` spawn as an in-process differential baseline
/// (the farm bench races the two on identical inputs).
fn advance_parallel(
    slots: &Arc<Vec<Mutex<Slot>>>,
    runnable: Vec<usize>,
    compute: &ComputePool,
    scoped_threads: bool,
    workers: usize,
    steals: &Arc<AtomicU64>,
) {
    if !scoped_threads {
        let nw = compute.budget().min(runnable.len()).max(1);
        let slots = Arc::clone(slots);
        let steals = Arc::clone(steals);
        compute.run(runnable.len(), move |k, w| {
            // Static home assignment is round-robin; a claim outside the
            // home share is a steal.
            if k % nw != w % nw {
                steals.fetch_add(1, Ordering::Relaxed);
            }
            advance_slot(&slots[runnable[k]]);
        });
        return;
    }
    let nw = workers.min(runnable.len());
    if nw <= 1 {
        for &i in &runnable {
            advance_slot(&slots[i]);
        }
        return;
    }
    let spawn_counter = taopt_telemetry::global().counter("host_threads_spawned_total");
    let cursor = AtomicUsize::new(0);
    let runnable = &runnable;
    std::thread::scope(|scope| {
        for w in 0..nw {
            let cursor = &cursor;
            spawn_counter.inc();
            scope.spawn(move || loop {
                let k = cursor.fetch_add(1, Ordering::SeqCst);
                if k >= runnable.len() {
                    break;
                }
                if k % nw != w {
                    steals.fetch_add(1, Ordering::Relaxed);
                }
                advance_slot(&slots[runnable[k]]);
            });
        }
    });
}

/// Sequential leasing boundary: demand collection, starvation repair,
/// max-min-fair grants, replacement bookkeeping.
#[allow(clippy::too_many_arguments)]
fn lease_boundary(
    slots: &[Mutex<Slot>],
    ledger: &mut LeaseLedger,
    pool: &mut dyn DevicePool,
    injector: Option<&FaultInjector>,
    round: u64,
    global_now: VirtualTime,
    min_hold_rounds: u64,
    revocations: &mut u64,
    revocations_counter: &taopt_telemetry::Counter,
    replacements_counter: &taopt_telemetry::Counter,
) {
    let n = slots.len();
    // Demand: the mode's natural demand merged with due replacement
    // retries (modes whose demand does not regrow after a loss — e.g.
    // resource mode between discoveries — still get their device back).
    let mut due: Vec<Vec<crate::resilience::ReplacementRequest>> = vec![Vec::new(); n];
    let mut want = vec![0usize; n];
    for i in 0..n {
        let s = &mut *slots[i].lock();
        // Consume the parallel-phase demand snapshot unconditionally:
        // even a skipped (finished) slot must not carry one forward.
        let snapshot = s.demand_snapshot.take();
        let Some(step) = s.step.as_ref() else {
            continue;
        };
        due[i] = s.queue.due(global_now);
        let cap = s.d_max.saturating_sub(step.active_count());
        // Demand was captured right after the step's round (boundary
        // prework); a boundary-2 kill cleared it, and apps that did not
        // run this round (waiting, or the initial boundary) never had
        // one — those recompute here.
        let demand = snapshot.unwrap_or_else(|| step.demand());
        debug_assert_eq!(demand, step.demand(), "stale demand snapshot");
        want[i] = demand.max(due[i].len().min(cap));
    }

    // Max-min fair targets with a rotating remainder so contended slots
    // cycle through apps instead of pinning to low indices.
    let desired: Vec<usize> = (0..n)
        .map(|i| (ledger.holdings(i) + want[i]).min(slots[i].lock().d_max))
        .collect();
    let mut targets = fair_targets_from(pool.capacity(), &desired, (round as usize) % n.max(1));

    // Starvation repair: a starved app with a positive fair share may
    // revoke from a donor when the farm is exhausted.
    let starved: Vec<usize> = (0..n)
        .filter(|&i| want[i] > 0 && ledger.holdings(i) == 0 && targets[i] > 0)
        .collect();
    for _ in &starved {
        if pool.active_count() < pool.capacity() {
            break; // free capacity serves the starved app directly
        }
        // Donor: over-target holders first, then any holder past the
        // protection window; richest first, oldest grant breaks ties.
        let mut donor: Option<(bool, usize, u64, usize)> = None;
        for j in 0..n {
            let h = ledger.holdings(j);
            if h == 0 {
                continue;
            }
            let s = slots[j].lock();
            if s.step.is_none() {
                continue;
            }
            let over = h > targets[j];
            let held_long = round.saturating_sub(s.last_grant_round) >= min_hold_rounds;
            if !over && !held_long {
                continue;
            }
            let better = match &donor {
                None => true,
                Some((b_over, b_h, b_lg, _)) => {
                    (over, h, u64::MAX - s.last_grant_round) > (*b_over, *b_h, u64::MAX - *b_lg)
                }
            };
            if better {
                donor = Some((over, h, s.last_grant_round, j));
            }
        }
        let Some((_, _, _, j)) = donor else { break };
        let mut s = slots[j].lock();
        let Some(d) = s.step.as_mut().and_then(|st| st.shrink_one()) else {
            break;
        };
        drop(s);
        ledger.release(d);
        pool.release(d, global_now);
        *revocations += 1;
        revocations_counter.inc();
        // The donor sits this boundary out so the freed slot reaches the
        // starved app.
        targets[j] = targets[j].min(ledger.holdings(j));
        want[j] = 0;
    }

    // Grant loop: one device at a time to the under-target app with the
    // fewest holdings (ties: least recently granted, then lowest index).
    loop {
        let mut pick: Option<(usize, u64, usize)> = None;
        for i in 0..n {
            if want[i] == 0 || ledger.holdings(i) >= targets[i] {
                continue;
            }
            let s = slots[i].lock();
            if s.step.is_none() {
                continue;
            }
            let key = (ledger.holdings(i), s.last_grant_round, i);
            let better = match &pick {
                None => true,
                Some(best) => key < *best,
            };
            if better {
                pick = Some(key);
            }
        }
        let Some((_, _, i)) = pick else { break };
        let device = match pool.allocate(global_now) {
            PoolDecision::Granted(d) => d,
            PoolDecision::Refused => {
                // The cloud refused this app's attempt; it re-demands next
                // boundary. Zeroing `want` guarantees the loop progresses
                // even at pathological refusal rates.
                want[i] = 0;
                continue;
            }
            PoolDecision::Exhausted => break,
        };
        ledger.grant(i, device);
        let s = &mut *slots[i].lock();
        let iid = s.step.as_mut().expect("live").grant(device);
        s.last_grant_round = round;
        want[i] -= 1;
        if !due[i].is_empty() {
            let req = due[i].remove(0);
            s.replacements += 1;
            replacements_counter.inc();
            if let Some(inj) = injector {
                inj.record_recovery(
                    req.lost_at,
                    global_now,
                    Some(((i as u32) << APP_LANE_SHIFT) + iid.0),
                    taopt_chaos::RecoveryKind::DeviceReallocated,
                );
            }
        }
    }

    // Unserved replacement demand retries later with backoff.
    for i in 0..n {
        let s = &mut *slots[i].lock();
        for req in std::mem::take(&mut due[i]) {
            s.queue.defer(req, global_now);
        }
    }
}
