//! Campaign digests: the logical state a checkpoint pins.
//!
//! A campaign's full in-memory state (emulators, tool RNGs, coordinator
//! engines) is deliberately not serializable — the runtime is
//! deterministic instead, so durable checkpoints store the *spec* plus a
//! [`CampaignDigest`]: an order-independent fingerprint of everything
//! scheduling can influence at a round boundary. A restore rebuilds the
//! campaign from its spec, replays to the checkpointed round, and proves
//! convergence by digest equality; from there, continuing produces a
//! result byte-identical to the uninterrupted run (DESIGN.md §13).
//!
//! Every field is a pure function of `(spec, round)` for the
//! deterministic scheduler — worker count, thread timing and host load
//! cannot move any of them.

use taopt_ui_model::json::{JsonError, Value};

use crate::campaign::step::StepProgress;

/// One app's slice of a campaign digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotDigest {
    /// App name (report key).
    pub name: String,
    /// Session fingerprint while the app is live; `None` once finished.
    pub progress: Option<StepProgress>,
    /// Global rounds spent holding zero devices.
    pub wait_rounds: u64,
    /// Lost devices successfully replaced so far.
    pub replacements: u64,
    /// Devices killed under this app so far.
    pub devices_lost: u64,
}

/// An order-independent fingerprint of a campaign at a round boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignDigest {
    /// Global round the digest was taken at.
    pub round: u64,
    /// Per-app slices, in input order.
    pub slots: Vec<SlotDigest>,
    /// Current `(device id, holder app)` pairs, in device-id order.
    pub leased: Vec<(u64, u64)>,
    /// Ledger lifetime counters: grants.
    pub grants: u64,
    /// Ledger lifetime counters: voluntary releases.
    pub releases: u64,
    /// Ledger lifetime counters: kills.
    pub kills: u64,
    /// Double-allocation events (must stay 0).
    pub conflicts: u64,
    /// Devices currently allocated in the farm.
    pub pool_active: u64,
    /// Devices permanently lost so far.
    pub pool_lost: u64,
    /// High-water mark of concurrent allocations.
    pub pool_peak: u64,
    /// Starvation revocations performed so far.
    pub revocations: u64,
    /// Faults injected so far (0 without a fault plan).
    pub faults_injected: u64,
    /// Recoveries observed so far (0 without a fault plan).
    pub faults_recovered: u64,
}

impl CampaignDigest {
    /// Human-readable description of the first field where `self` and
    /// `other` disagree, or `None` when they are equal. Restore paths use
    /// this to turn a digest mismatch into an actionable error.
    pub fn diff(&self, other: &CampaignDigest) -> Option<String> {
        if self.round != other.round {
            return Some(format!("round: {} vs {}", self.round, other.round));
        }
        macro_rules! check {
            ($field:ident) => {
                if self.$field != other.$field {
                    return Some(format!(
                        "{}: {:?} vs {:?}",
                        stringify!($field),
                        self.$field,
                        other.$field
                    ));
                }
            };
        }
        check!(leased);
        check!(grants);
        check!(releases);
        check!(kills);
        check!(conflicts);
        check!(pool_active);
        check!(pool_lost);
        check!(pool_peak);
        check!(revocations);
        check!(faults_injected);
        check!(faults_recovered);
        if self.slots.len() != other.slots.len() {
            return Some(format!(
                "slot count: {} vs {}",
                self.slots.len(),
                other.slots.len()
            ));
        }
        for (i, (a, b)) in self.slots.iter().zip(other.slots.iter()).enumerate() {
            if a != b {
                return Some(format!("slot {i} ({}): {a:?} vs {b:?}", a.name));
            }
        }
        None
    }

    /// Serializes the digest to a JSON value.
    pub fn to_value(&self) -> Value {
        let slots = self
            .slots
            .iter()
            .map(|s| {
                let mut fields = vec![
                    ("name".to_owned(), Value::Str(s.name.clone())),
                    ("wait_rounds".to_owned(), Value::UInt(s.wait_rounds)),
                    ("replacements".to_owned(), Value::UInt(s.replacements)),
                    ("devices_lost".to_owned(), Value::UInt(s.devices_lost)),
                ];
                if let Some(p) = &s.progress {
                    let active = p
                        .active
                        .iter()
                        .map(|(iid, dev, trace)| {
                            Value::Array(vec![
                                Value::UInt(*iid as u64),
                                Value::UInt(*dev),
                                Value::UInt(*trace),
                            ])
                        })
                        .collect();
                    fields.push((
                        "progress".to_owned(),
                        Value::Object(vec![
                            ("round".to_owned(), Value::UInt(p.round)),
                            ("now_ms".to_owned(), Value::UInt(p.now_ms)),
                            ("machine_ms".to_owned(), Value::UInt(p.machine_ms)),
                            ("union".to_owned(), Value::UInt(p.union as u64)),
                            (
                                "finished_instances".to_owned(),
                                Value::UInt(p.finished_instances as u64),
                            ),
                            (
                                "next_instance".to_owned(),
                                Value::UInt(p.next_instance as u64),
                            ),
                            ("done".to_owned(), Value::Bool(p.done)),
                            ("active".to_owned(), Value::Array(active)),
                        ]),
                    ));
                }
                Value::Object(fields)
            })
            .collect();
        let leased = self
            .leased
            .iter()
            .map(|(d, a)| Value::Array(vec![Value::UInt(*d), Value::UInt(*a)]))
            .collect();
        Value::Object(vec![
            ("round".to_owned(), Value::UInt(self.round)),
            ("slots".to_owned(), Value::Array(slots)),
            ("leased".to_owned(), Value::Array(leased)),
            ("grants".to_owned(), Value::UInt(self.grants)),
            ("releases".to_owned(), Value::UInt(self.releases)),
            ("kills".to_owned(), Value::UInt(self.kills)),
            ("conflicts".to_owned(), Value::UInt(self.conflicts)),
            ("pool_active".to_owned(), Value::UInt(self.pool_active)),
            ("pool_lost".to_owned(), Value::UInt(self.pool_lost)),
            ("pool_peak".to_owned(), Value::UInt(self.pool_peak)),
            ("revocations".to_owned(), Value::UInt(self.revocations)),
            (
                "faults_injected".to_owned(),
                Value::UInt(self.faults_injected),
            ),
            (
                "faults_recovered".to_owned(),
                Value::UInt(self.faults_recovered),
            ),
        ])
    }

    /// Deserializes a digest, failing with [`JsonError`] on missing or
    /// mistyped fields.
    pub fn from_value(v: &Value) -> Result<Self, JsonError> {
        let u = |val: &Value, key: &str| -> Result<u64, JsonError> {
            val.require(key)?
                .as_u64()
                .ok_or_else(|| JsonError::conversion(format!("field `{key}` must be a u64")))
        };
        let slots_v = v
            .require("slots")?
            .as_array()
            .ok_or_else(|| JsonError::conversion("slots must be an array"))?;
        let mut slots = Vec::with_capacity(slots_v.len());
        for sv in slots_v {
            let name = sv
                .require("name")?
                .as_str()
                .ok_or_else(|| JsonError::conversion("slot name must be a string"))?
                .to_owned();
            let progress = match sv.get("progress") {
                None | Some(Value::Null) => None,
                Some(pv) => {
                    let active_v = pv
                        .require("active")?
                        .as_array()
                        .ok_or_else(|| JsonError::conversion("active must be an array"))?;
                    let mut active = Vec::with_capacity(active_v.len());
                    for av in active_v {
                        let triple = av.as_array().filter(|a| a.len() == 3).ok_or_else(|| {
                            JsonError::conversion("active entry must be a triple")
                        })?;
                        let n = |i: usize| -> Result<u64, JsonError> {
                            triple[i].as_u64().ok_or_else(|| {
                                JsonError::conversion("active entry fields must be u64")
                            })
                        };
                        active.push((n(0)? as u32, n(1)?, n(2)?));
                    }
                    Some(StepProgress {
                        round: u(pv, "round")?,
                        now_ms: u(pv, "now_ms")?,
                        machine_ms: u(pv, "machine_ms")?,
                        union: u(pv, "union")? as usize,
                        finished_instances: u(pv, "finished_instances")? as usize,
                        next_instance: u(pv, "next_instance")? as u32,
                        done: matches!(pv.require("done")?, Value::Bool(true)),
                        active,
                    })
                }
            };
            slots.push(SlotDigest {
                name,
                progress,
                wait_rounds: u(sv, "wait_rounds")?,
                replacements: u(sv, "replacements")?,
                devices_lost: u(sv, "devices_lost")?,
            });
        }
        let leased_v = v
            .require("leased")?
            .as_array()
            .ok_or_else(|| JsonError::conversion("leased must be an array"))?;
        let mut leased = Vec::with_capacity(leased_v.len());
        for lv in leased_v {
            let pair = lv
                .as_array()
                .filter(|a| a.len() == 2)
                .ok_or_else(|| JsonError::conversion("leased entry must be a pair"))?;
            let n = |i: usize| -> Result<u64, JsonError> {
                pair[i]
                    .as_u64()
                    .ok_or_else(|| JsonError::conversion("leased entry fields must be u64"))
            };
            leased.push((n(0)?, n(1)?));
        }
        Ok(CampaignDigest {
            round: u(v, "round")?,
            slots,
            leased,
            grants: u(v, "grants")?,
            releases: u(v, "releases")?,
            kills: u(v, "kills")?,
            conflicts: u(v, "conflicts")?,
            pool_active: u(v, "pool_active")?,
            pool_lost: u(v, "pool_lost")?,
            pool_peak: u(v, "pool_peak")?,
            revocations: u(v, "revocations")?,
            faults_injected: u(v, "faults_injected")?,
            faults_recovered: u(v, "faults_recovered")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CampaignDigest {
        CampaignDigest {
            round: 7,
            slots: vec![
                SlotDigest {
                    name: "shop".to_owned(),
                    progress: Some(StepProgress {
                        round: 5,
                        now_ms: 50_000,
                        machine_ms: 90_000,
                        union: 42,
                        finished_instances: 1,
                        next_instance: 3,
                        done: false,
                        active: vec![(1, 4, 120), (2, 9, 87)],
                    }),
                    wait_rounds: 2,
                    replacements: 1,
                    devices_lost: 1,
                },
                SlotDigest {
                    name: "news".to_owned(),
                    progress: None,
                    wait_rounds: 0,
                    replacements: 0,
                    devices_lost: 0,
                },
            ],
            leased: vec![(4, 0), (9, 0)],
            grants: 6,
            releases: 2,
            kills: 1,
            conflicts: 0,
            pool_active: 2,
            pool_lost: 1,
            pool_peak: 4,
            revocations: 1,
            faults_injected: 3,
            faults_recovered: 2,
        }
    }

    #[test]
    fn digest_roundtrips_through_json() {
        let d = sample();
        let text = d.to_value().to_json_string();
        let back = CampaignDigest::from_value(&Value::parse(&text).unwrap()).unwrap();
        assert_eq!(d, back);
        assert_eq!(d.diff(&back), None);
    }

    #[test]
    fn diff_names_the_first_divergent_field() {
        let a = sample();
        let mut b = sample();
        b.grants = 7;
        let msg = a.diff(&b).expect("digests differ");
        assert!(msg.contains("grants"), "got: {msg}");

        let mut c = sample();
        c.slots[0].progress.as_mut().unwrap().union = 43;
        let msg = a.diff(&c).expect("digests differ");
        assert!(msg.contains("slot 0"), "got: {msg}");
    }

    #[test]
    fn malformed_digest_is_a_clean_error() {
        for text in [
            "{}",
            "{\"round\": 1}",
            "{\"round\": \"x\", \"slots\": [], \"leased\": []}",
        ] {
            let v = Value::parse(text).unwrap();
            assert!(CampaignDigest::from_value(&v).is_err());
        }
    }
}
