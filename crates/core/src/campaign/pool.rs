//! Persistent host compute pool shared by every parallel hot path.
//!
//! Before this module, each campaign round spawned and joined fresh
//! scoped worker threads in `advance_parallel`, and every app's
//! `ingest_round` spawned *another* `analysis_workers` scoped threads
//! inside the round — nested oversubscription (`workers ×
//! analysis_workers` live threads at the worst point) plus per-round
//! spawn/join churn on the host. [`ComputePool`] replaces both call
//! sites with one long-lived budget: `host_threads - 1` workers are
//! spawned once per [`super::scheduler::Campaign`] (or once per process
//! for single-app sessions, via [`ComputePool::shared`]), park on a
//! condvar while idle, and serve both consumers — per-app step tasks
//! and phase-A analysis tasks.
//!
//! # Scheduling model
//!
//! A [`ComputePool::run`] call publishes one *job*: `tasks` indexed
//! units plus a closure invoked as `f(task_index, worker_id)`. Task
//! indices are claimed from a shared atomic cursor, so idle workers
//! steal whatever is left regardless of which consumer published it —
//! the same self-scheduling loop the old scoped paths used, minus the
//! thread churn. The *calling* thread always participates as worker 0
//! before blocking, which keeps two invariants:
//!
//! * **budget**: at most `host_threads` threads ever execute tasks
//!   (the caller plus `host_threads - 1` pool workers);
//! * **progress under nesting**: a step task may itself call
//!   [`ComputePool::run`] (the analyzer's phase A). The nested caller
//!   first drains its own job's cursor, and a thread only blocks when
//!   every task of its job is claimed — each claimed task is then
//!   actively executing on some non-blocked thread, so completion (and
//!   thus wake-up) is always reachable. No thread ever waits while
//!   holding an unexecuted claimed task.
//!
//! # Determinism
//!
//! The pool adds no ordering of its own: tasks are independent by
//! contract (each touches disjoint state behind its own lock), exactly
//! as the scoped-thread predecessors required. The differential law in
//! `crates/core/tests/parallel_equivalence.rs` pins pool-scheduled
//! analysis byte-identical to the scoped-thread and serial paths, and
//! the campaign determinism suites pin whole-campaign reports across
//! `host_threads` budgets. See `DESIGN.md` §16.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

/// One published batch of tasks: `run` is invoked as `(task, worker)`
/// for every claimed index, `next` is the claim cursor, and `done`
/// counts finished tasks (the submitter waits on `done_cv` until
/// `done == tasks`).
struct JobState {
    run: Box<dyn Fn(usize, usize) + Send + Sync>,
    tasks: usize,
    next: AtomicUsize,
    done: Mutex<usize>,
    done_cv: Condvar,
}

impl JobState {
    /// Claims and executes tasks until the cursor is exhausted, then
    /// reports how many this thread completed.
    fn participate(&self, worker_id: usize) {
        let mut completed = 0usize;
        loop {
            let k = self.next.fetch_add(1, Ordering::Relaxed);
            if k >= self.tasks {
                break;
            }
            (self.run)(k, worker_id);
            completed += 1;
        }
        if completed > 0 {
            let mut done = self.done.lock();
            *done += completed;
            if *done == self.tasks {
                self.done_cv.notify_all();
            }
        }
    }

    /// Whether every task index has been claimed (not necessarily
    /// finished) — an exhausted job is dead weight in the queue.
    fn exhausted(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.tasks
    }
}

/// Queue of live jobs plus the shutdown latch, under one small mutex
/// (locked only to publish, scan, or park — task execution never holds
/// it).
struct PoolQueue {
    jobs: Vec<Arc<JobState>>,
    shutdown: bool,
}

/// State shared between the pool handle and its worker threads.
struct PoolShared {
    queue: Mutex<PoolQueue>,
    work_ready: Condvar,
}

impl PoolShared {
    /// Returns some job with unclaimed tasks, pruning exhausted ones;
    /// `None` means the queue is empty (caller may park).
    fn next_job(&self) -> Option<Arc<JobState>> {
        let mut q = self.queue.lock();
        q.jobs.retain(|j| !j.exhausted());
        q.jobs.first().cloned()
    }
}

/// A persistent work-stealing thread pool sized by one campaign-wide
/// `host_threads` budget (see [`crate::campaign::CampaignConfig::host_threads`]).
///
/// Created once per campaign (or per process, [`ComputePool::shared`])
/// and threaded down to every consumer as an `Arc`; dropping the last
/// handle signals shutdown and joins the workers. A budget of 1 spawns
/// no threads at all — [`ComputePool::run`] then executes inline, so
/// serial configurations pay nothing.
pub struct ComputePool {
    shared: Arc<PoolShared>,
    threads: Vec<JoinHandle<()>>,
    budget: usize,
}

impl std::fmt::Debug for ComputePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ComputePool")
            .field("budget", &self.budget)
            .finish_non_exhaustive()
    }
}

impl ComputePool {
    /// Creates a pool with the given host-thread budget, spawning
    /// `budget - 1` long-lived workers (the submitting thread is the
    /// budget's first member). `0` means auto-detect:
    /// [`std::thread::available_parallelism`].
    ///
    /// Every spawn increments the `host_threads_spawned_total` counter;
    /// the farm bench samples it to prove rounds stop spawning threads
    /// after warm-up.
    pub fn new(host_threads: usize) -> Arc<ComputePool> {
        let budget = if host_threads == 0 {
            auto_threads()
        } else {
            host_threads
        };
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(PoolQueue {
                jobs: Vec::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
        });
        let spawn_counter = taopt_telemetry::global().counter("host_threads_spawned_total");
        let threads = (1..budget)
            .map(|worker_id| {
                spawn_counter.inc();
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("taopt-pool-{worker_id}"))
                    .spawn(move || worker_loop(&shared, worker_id))
                    .expect("spawn pool worker")
            })
            .collect();
        Arc::new(ComputePool {
            shared,
            threads,
            budget,
        })
    }

    /// The process-local shared pool (auto-detected budget), used by the
    /// single-app `run`/`run_with_chaos` paths so they ride the same
    /// machinery as campaigns. Created on first use, never dropped.
    pub fn shared() -> Arc<ComputePool> {
        static SHARED: OnceLock<Arc<ComputePool>> = OnceLock::new();
        Arc::clone(SHARED.get_or_init(|| ComputePool::new(0)))
    }

    /// The host-thread budget (≥ 1): the maximum number of threads that
    /// ever execute tasks concurrently, counting the submitter.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Executes `f(task, worker)` for every `task in 0..tasks`,
    /// returning when all have finished. Tasks must be independent
    /// (any may run concurrently with any other, on any thread).
    ///
    /// With a budget of 1 — or a single task — this is a plain inline
    /// loop: no queue, no locks, no allocation. Otherwise the job is
    /// published to the pool, the calling thread claims tasks alongside
    /// the workers, and then parks until the last straggler finishes.
    pub fn run<F>(&self, tasks: usize, f: F)
    where
        F: Fn(usize, usize) + Send + Sync + 'static,
    {
        if tasks == 0 {
            return;
        }
        if self.budget <= 1 || tasks == 1 {
            for k in 0..tasks {
                f(k, 0);
            }
            return;
        }
        let job = Arc::new(JobState {
            run: Box::new(f),
            tasks,
            next: AtomicUsize::new(0),
            done: Mutex::new(0),
            done_cv: Condvar::new(),
        });
        {
            let mut q = self.shared.queue.lock();
            q.jobs.push(Arc::clone(&job));
        }
        // Wake only as many workers as could usefully help: the caller
        // claims tasks itself, so a `tasks`-unit job needs at most
        // `tasks - 1` helpers. A broadcast here would stampede the whole
        // budget through the scheduler for every small nested job.
        for _ in 0..(tasks - 1).min(self.budget - 1) {
            self.shared.work_ready.notify_one();
        }
        // The caller is worker 0: it drains its own job's cursor before
        // blocking, so a nested `run` from inside a task cannot deadlock
        // (see module docs).
        job.participate(0);
        let mut done = job.done.lock();
        while *done < job.tasks {
            job.done_cv.wait(&mut done);
        }
        drop(done);
        // Drop our queue entry eagerly so the job's captures (slot Arcs,
        // traces) are not pinned until the next worker scan.
        let mut q = self.shared.queue.lock();
        q.jobs.retain(|j| !Arc::ptr_eq(j, &job));
    }
}

impl Drop for ComputePool {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock();
            q.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// The long-lived worker body: grab a job with unclaimed tasks, help
/// finish it, park when the queue is empty.
fn worker_loop(shared: &PoolShared, worker_id: usize) {
    loop {
        if let Some(job) = shared.next_job() {
            job.participate(worker_id);
            continue;
        }
        let mut q = shared.queue.lock();
        if q.shutdown {
            return;
        }
        if q.jobs.iter().all(|j| j.exhausted()) {
            shared.work_ready.wait(&mut q);
        }
    }
}

/// The auto-detected host budget: `std::thread::available_parallelism`,
/// falling back to 1 on platforms that cannot report it.
pub fn auto_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_task_exactly_once() {
        let pool = ComputePool::new(4);
        let hits: Arc<Vec<AtomicU64>> = Arc::new((0..97).map(|_| AtomicU64::new(0)).collect());
        let h = Arc::clone(&hits);
        pool.run(97, move |k, _| {
            h[k].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn budget_one_runs_inline() {
        let pool = ComputePool::new(1);
        assert_eq!(pool.budget(), 1);
        let sum = Arc::new(AtomicU64::new(0));
        let s = Arc::clone(&sum);
        pool.run(10, move |k, w| {
            assert_eq!(w, 0, "inline path is the caller only");
            s.fetch_add(k as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 45);
    }

    #[test]
    fn nested_submission_completes() {
        // A task that itself publishes a job — the analyzer's phase A
        // running inside a step task. Must not deadlock at any budget.
        for budget in [2, 3, 8] {
            let pool = ComputePool::new(budget);
            let total = Arc::new(AtomicU64::new(0));
            let outer_pool = Arc::clone(&pool);
            let outer_total = Arc::clone(&total);
            pool.run(6, move |_, _| {
                let inner_total = Arc::clone(&outer_total);
                outer_pool.run(5, move |_, _| {
                    inner_total.fetch_add(1, Ordering::Relaxed);
                });
            });
            assert_eq!(total.load(Ordering::Relaxed), 30, "budget {budget}");
        }
    }

    #[test]
    fn sequential_jobs_reuse_the_same_workers() {
        let before = taopt_telemetry::global()
            .counter("host_threads_spawned_total")
            .get();
        let pool = ComputePool::new(3);
        let after_new = taopt_telemetry::global()
            .counter("host_threads_spawned_total")
            .get();
        for _ in 0..20 {
            let flag = Arc::new(AtomicU64::new(0));
            let f = Arc::clone(&flag);
            pool.run(8, move |_, _| {
                f.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(flag.load(Ordering::Relaxed), 8);
        }
        let after_runs = taopt_telemetry::global()
            .counter("host_threads_spawned_total")
            .get();
        assert_eq!(after_new - before, 2, "budget 3 spawns exactly 2 workers");
        assert_eq!(after_runs, after_new, "run() never spawns");
    }
}
