//! Offline conservative subspace partitioning (preliminary study, §3.1).
//!
//! The paper's study applies "an offline UI subspace partition algorithm
//! … on the traces", segmenting "conservatively, requiring both low
//! inter-region transition probabilities and high internal cohesion before
//! partitioning". This module implements that algorithm as greedy
//! agglomerative clustering on the empirical transition graph: clusters
//! are merged while their symmetric conductance exceeds a coupling
//! threshold, so the final clusters are pairwise loosely coupled.
//!
//! The implementation maintains cluster-pair cut weights and volumes
//! incrementally, so a full partition of a `D`-screen graph costs
//! `O(D³)` cheap float operations rather than recomputing conductance
//! from edges at every step.

use std::collections::{BTreeSet, HashMap};

use taopt_ui_model::{AbstractScreenId, StochasticDigraph, Trace, VirtualDuration};

use crate::findspace::{find_space, FindSpaceConfig};
use crate::metrics::jaccard::jaccard;

/// Configuration for the offline partitioner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionConfig {
    /// Clusters with symmetric conductance above this keep merging.
    pub coupling_threshold: f64,
    /// Discard result clusters smaller than this (noise screens).
    pub min_cluster_size: usize,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            coupling_threshold: 0.15,
            min_cluster_size: 2,
        }
    }
}

/// Incremental agglomerative clustering state.
struct Agglomerator {
    /// Directed cut weight between live clusters.
    w: Vec<Vec<f64>>,
    /// Internal edge weight per cluster.
    internal: Vec<f64>,
    /// Total outgoing weight (standard volume) per cluster.
    out_total: Vec<f64>,
    /// Members per cluster.
    members: Vec<Vec<u64>>,
    /// Live flags.
    alive: Vec<bool>,
}

impl Agglomerator {
    fn new(g: &StochasticDigraph) -> Self {
        let nodes: Vec<u64> = g.nodes().collect();
        let index: HashMap<u64, usize> = nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
        let d = nodes.len();
        let mut w = vec![vec![0.0; d]; d];
        let internal = vec![0.0; d];
        for (from, to, weight) in g.edges() {
            let (i, j) = (index[&from], index[&to]);
            if i != j {
                w[i][j] += weight;
            }
        }
        // Self-loops count as internal weight; volumes are the standard
        // total-outgoing-weight (the paper's Eq. 2 volume degenerates to
        // ~0 on singleton clusters of a normalized graph, so the offline
        // partitioner uses the standard, monotone notion instead).
        let mut agg = Agglomerator {
            w,
            internal,
            out_total: vec![0.0; d],
            members: nodes.iter().map(|n| vec![*n]).collect(),
            alive: vec![true; d],
        };
        for (from, to, weight) in g.edges() {
            if from == to {
                agg.internal[index[&from]] += weight;
            }
            agg.out_total[index[&from]] += weight;
        }
        agg
    }

    /// Symmetric conductance between live clusters, with standard volumes.
    fn coupling(&self, i: usize, j: usize) -> f64 {
        let denom = self.out_total[i].min(self.out_total[j]);
        if denom <= 0.0 {
            return 0.0;
        }
        self.w[i][j].max(self.w[j][i]) / denom
    }

    /// Merges cluster `j` into `i`.
    fn merge(&mut self, i: usize, j: usize) {
        self.internal[i] += self.internal[j] + self.w[i][j] + self.w[j][i];
        self.out_total[i] += self.out_total[j];
        let d = self.w.len();
        for k in 0..d {
            if k != i && k != j && self.alive[k] {
                self.w[i][k] += self.w[j][k];
                self.w[k][i] += self.w[k][j];
            }
        }
        self.w[i][j] = 0.0;
        self.w[j][i] = 0.0;
        let moved = std::mem::take(&mut self.members[j]);
        self.members[i].extend(moved);
        self.alive[j] = false;
    }

    fn run(mut self, threshold: f64) -> Vec<BTreeSet<u64>> {
        let d = self.w.len();
        loop {
            let mut best: Option<(usize, usize, f64)> = None;
            for i in 0..d {
                if !self.alive[i] {
                    continue;
                }
                for j in i + 1..d {
                    if !self.alive[j] {
                        continue;
                    }
                    let c = self.coupling(i, j);
                    if c > threshold && best.map(|(_, _, b)| c > b).unwrap_or(true) {
                        best = Some((i, j, c));
                    }
                }
            }
            match best {
                Some((i, j, _)) => self.merge(i, j),
                None => break,
            }
        }
        (0..d)
            .filter(|i| self.alive[*i])
            .map(|i| self.members[i].iter().copied().collect())
            .collect()
    }
}

/// Partitions a transition graph into loosely coupled clusters.
///
/// Greedy agglomeration: start with singletons, repeatedly merge the pair
/// with the highest symmetric conductance while it exceeds
/// [`PartitionConfig::coupling_threshold`]. Conservative by construction —
/// screens are split apart only when the evidence of loose coupling
/// (low residual conductance) is strong.
pub fn partition_graph(g: &StochasticDigraph, config: &PartitionConfig) -> Vec<BTreeSet<u64>> {
    let mut clusters = Agglomerator::new(g).run(config.coupling_threshold);
    clusters.retain(|c| c.len() >= config.min_cluster_size);
    clusters.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));
    clusters
}

/// Recursively segments one trace at `FindSpace` split points; returns the
/// distinct-screen set of each segment.
///
/// This is the paper's offline subspace partition "based on the algorithm
/// introduced in Section 5.2": the same split criterion is applied
/// repeatedly to the trace pieces until no piece contains a loosely
/// coupled boundary.
pub fn segment_trace(
    trace: &Trace,
    fs_config: &FindSpaceConfig,
) -> Vec<BTreeSet<AbstractScreenId>> {
    fn rec(
        events: &[taopt_ui_model::TraceEvent],
        cfg: &FindSpaceConfig,
        out: &mut Vec<BTreeSet<AbstractScreenId>>,
        depth: usize,
    ) {
        if depth < 12 {
            if let Some(split) = find_space(events, cfg) {
                if split.index > 0 && split.index < events.len() {
                    rec(&events[..split.index], cfg, out, depth + 1);
                    rec(&events[split.index..], cfg, out, depth + 1);
                    return;
                }
            }
        }
        if !events.is_empty() {
            out.push(events.iter().map(|e| e.abstract_id).collect());
        }
    }
    let mut out = Vec::new();
    rec(trace.events(), fs_config, &mut out, 0);
    out
}

/// The paper's offline subspace partition: segment every trace with
/// `FindSpace`, then merge segment screen-sets that overlap (Jaccard
/// ≥ `merge_jaccard`) into subspaces. Conservative: only clearly loose
/// boundaries split segments, and overlapping segments re-merge.
pub fn partition_traces(
    traces: &[&Trace],
    config: &PartitionConfig,
) -> Vec<BTreeSet<AbstractScreenId>> {
    let fs_config = FindSpaceConfig {
        l_min: VirtualDuration::from_secs(30),
        ..FindSpaceConfig::default()
    };
    let mut subspaces: Vec<BTreeSet<AbstractScreenId>> = Vec::new();
    for t in traces {
        for seg in segment_trace(t, &fs_config) {
            if seg.len() < config.min_cluster_size {
                continue;
            }
            match subspaces.iter_mut().find(|s| jaccard(s, &seg) >= 0.4) {
                Some(existing) => existing.extend(seg),
                None => subspaces.push(seg),
            }
        }
    }
    subspaces.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));
    subspaces
}

/// Convenience: map clusters back to a node → cluster-index lookup.
pub fn cluster_index(clusters: &[BTreeSet<u64>]) -> HashMap<u64, usize> {
    let mut map = HashMap::new();
    for (i, c) in clusters.iter().enumerate() {
        for n in c {
            map.insert(*n, i);
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conductance::partition_score;

    /// Two dense 4-cliques bridged by one weak edge pair.
    fn gs_ld_graph() -> StochasticDigraph {
        let mut g = StochasticDigraph::new();
        let cliques: [&[u64]; 2] = [&[1, 2, 3, 4], &[11, 12, 13, 14]];
        for clique in cliques {
            for &a in clique {
                for &b in clique {
                    if a != b {
                        g.add_edge(a, b, 1.0).unwrap();
                    }
                }
            }
        }
        g.add_edge(1, 11, 0.05).unwrap();
        g.add_edge(11, 1, 0.05).unwrap();
        g.normalized()
    }

    #[test]
    fn recovers_the_two_cliques() {
        let clusters = partition_graph(&gs_ld_graph(), &PartitionConfig::default());
        assert_eq!(clusters.len(), 2, "clusters: {clusters:?}");
        let a: BTreeSet<u64> = [1, 2, 3, 4].into_iter().collect();
        let b: BTreeSet<u64> = [11, 12, 13, 14].into_iter().collect();
        assert!(clusters.contains(&a));
        assert!(clusters.contains(&b));
    }

    #[test]
    fn recovered_partition_minimizes_conductance() {
        let g = gs_ld_graph();
        let clusters = partition_graph(&g, &PartitionConfig::default());
        let score = partition_score(&g, &clusters);
        assert!(score < 0.1, "recovered partition couples at {score}");
    }

    #[test]
    fn strongly_coupled_graph_stays_one_cluster() {
        let mut g = StochasticDigraph::new();
        for a in 1..=4u64 {
            for b in 1..=4u64 {
                if a != b {
                    g.add_edge(a, b, 1.0).unwrap();
                }
            }
        }
        let clusters = partition_graph(&g.normalized(), &PartitionConfig::default());
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 4);
    }

    #[test]
    fn min_cluster_size_drops_noise() {
        let mut g = gs_ld_graph();
        g.add_node(99); // isolated screen: a one-off dialog.
        let clusters = partition_graph(&g, &PartitionConfig::default());
        assert!(clusters.iter().all(|c| !c.contains(&99)));
    }

    #[test]
    fn partition_traces_on_synthetic_walks() {
        use crate::findspace::tests::two_cluster_trace;
        let t: Trace = two_cluster_trace(60, 60).into_iter().collect();
        let clusters = partition_traces(&[&t], &PartitionConfig::default());
        assert_eq!(
            clusters.len(),
            2,
            "walk through two clusters should yield 2 subspaces, got {clusters:?}"
        );
        assert!(clusters.iter().all(|c| c.len() == 5));
    }

    #[test]
    fn segments_merge_across_traces() {
        use crate::findspace::tests::two_cluster_trace;
        // Two instances visiting the same two clusters in opposite order
        // still yield two subspaces overall.
        let t1: Trace = two_cluster_trace(60, 60).into_iter().collect();
        let mut rev = two_cluster_trace(60, 60);
        rev.reverse();
        for (i, e) in rev.iter_mut().enumerate() {
            e.time = taopt_ui_model::VirtualTime::from_secs(2 * i as u64);
        }
        let t2: Trace = rev.into_iter().collect();
        let clusters = partition_traces(&[&t1, &t2], &PartitionConfig::default());
        assert_eq!(clusters.len(), 2, "got {clusters:?}");
    }

    #[test]
    fn cluster_index_roundtrip() {
        let clusters = partition_graph(&gs_ld_graph(), &PartitionConfig::default());
        let idx = cluster_index(&clusters);
        for (i, c) in clusters.iter().enumerate() {
            for n in c {
                assert_eq!(idx[n], i);
            }
        }
    }

    #[test]
    fn scales_to_hundreds_of_nodes() {
        // 8 cliques of 25 nodes: 200 nodes total, partitioned quickly. The
        // coupling threshold must sit below the intra-clique singleton
        // conductance (1/24) and above the inter-clique one (~0.0004).
        let mut g = StochasticDigraph::new();
        for c in 0..8u64 {
            let base = c * 100;
            for a in 0..25u64 {
                for b in 0..25u64 {
                    if a != b {
                        g.add_edge(base + a, base + b, 1.0).unwrap();
                    }
                }
            }
            g.add_edge(base, (base + 100) % 800, 0.01).unwrap();
        }
        let cfg = PartitionConfig {
            coupling_threshold: 0.01,
            min_cluster_size: 2,
        };
        let clusters = partition_graph(&g.normalized(), &cfg);
        assert_eq!(clusters.len(), 8);
        assert!(clusters.iter().all(|c| c.len() == 25));
    }
}
