//! `FindSpace` — Algorithm 1: identifying loosely coupled UI subspaces
//! via trace analysis.
//!
//! Given a UI transition trace `S` (with timestamps `T`) and the threshold
//! `l_min`, `FindSpace` examines every split index `p` and scores how
//! loosely the exploration *after* `p` couples to the exploration *before*
//! `p`:
//!
//! ```text
//! overlap_score(p) = (Σ_{s ∈ Set(S[0:p])} CountIn(s, S[p:N])) / (N − p)
//! purity_score(p)  = sigmoid(|Set(S[p:N])| / sample_size − 1)
//! score(p)         = overlap_score(p) + 2·purity_score(p) − 1
//! ```
//!
//! where `sample_size = |Set(S[p_max+1:N])|` and `p_max` is the largest
//! index leaving at least `l_min` of trace after the split. The split with
//! the minimum score below the initial bound (1) is returned; `CountIn`
//! counts appearances by abstract-hierarchy tree similarity.
//!
//! Three implementations are provided: [`find_space`] maintains the
//! overlap sum incrementally in `O(N·D)` per call (with `D` distinct
//! abstract screens), [`find_space_naive`] transcribes the paper's
//! pseudo-code directly in `O(N²)`, and [`FindSpaceEngine`] keeps the
//! analysis state alive across calls so re-analyzing an append-only
//! trace costs `O(ΔN·D + P)`; tests assert all three agree (the engine
//! bit-identically).

mod arena;
mod engine;

use std::collections::HashMap;

use taopt_ui_model::similarity::{tree_similarity, DEFAULT_SIMILARITY_THRESHOLD};
use taopt_ui_model::{TraceEvent, VirtualDuration};

pub use arena::ScreenArena;
pub use engine::FindSpaceEngine;
// The cache lives in `ui-model` next to `tree_similarity` (it is a pure
// function of hierarchies); re-exported here where every consumer — the
// engine, the rescan reference, the analyzer — already imports it.
pub use taopt_ui_model::similarity::SimilarityCache;

use engine::SCREEN_CAPACITY_HINT;

/// Tunables for `FindSpace`.
#[derive(Debug, Clone, PartialEq)]
pub struct FindSpaceConfig {
    /// Minimum trace time that must remain after the split (`l_min`).
    pub l_min: VirtualDuration,
    /// Tree-similarity threshold for `CountIn`.
    pub similarity_threshold: f64,
    /// Accept only splits scoring strictly below this bound. The paper's
    /// pseudo-code initializes `score_min = 1`; the default here is
    /// tighter so that only clearly loose splits are reported (genuine
    /// cluster boundaries score ≈ 0–0.3, homogeneous traces ≈ 0.7–1).
    pub max_score: f64,
    /// Minimum events before a split (the exploration preceding the
    /// subspace must be non-trivial).
    pub min_prefix_events: usize,
    /// Minimum distinct screens before a split. Guards against the
    /// degenerate low-overlap scores of one-screen prefixes.
    pub min_prefix_distinct: usize,
}

impl Default for FindSpaceConfig {
    fn default() -> Self {
        FindSpaceConfig {
            l_min: VirtualDuration::from_mins(1),
            similarity_threshold: DEFAULT_SIMILARITY_THRESHOLD,
            max_score: 0.6,
            min_prefix_events: 8,
            min_prefix_distinct: 3,
        }
    }
}

/// A split proposed by `FindSpace`: the trace suffix `S[index..]` is a
/// loosely coupled UI subspace entered at `index`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitCandidate {
    /// Index of the subspace entry event (`p_out`).
    pub index: usize,
    /// The split's score (lower = more loosely coupled).
    pub score: f64,
}

/// The logistic function used by the purity term.
pub fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Builds the pairwise similarity relation over the distinct abstract
/// screens of a trace. Returns (id → dense index, D×D boolean matrix).
fn similarity_relation(
    events: &[TraceEvent],
    threshold: f64,
    cache: &SimilarityCache,
) -> (HashMap<u64, usize>, Vec<Vec<bool>>) {
    let mut index: HashMap<u64, usize> =
        HashMap::with_capacity(events.len().min(SCREEN_CAPACITY_HINT));
    let mut reps: Vec<&TraceEvent> = Vec::new();
    for e in events {
        index.entry(e.abstract_id.0).or_insert_with(|| {
            reps.push(e);
            reps.len() - 1
        });
    }
    let d = reps.len();
    let mut sim = vec![vec![false; d]; d];
    for i in 0..d {
        sim[i][i] = true;
        for j in i + 1..d {
            let s = cache.similar(reps[i], reps[j], threshold);
            sim[i][j] = s;
            sim[j][i] = s;
        }
    }
    (index, sim)
}

/// Largest split index leaving at least `l_min` after it, if any.
fn p_max(events: &[TraceEvent], l_min: VirtualDuration) -> Option<usize> {
    let n = events.len();
    if n < 2 {
        return None;
    }
    let end = events[n - 1].time;
    let cutoff = end.as_millis().checked_sub(l_min.as_millis())?;
    (0..n).rev().find(|p| events[*p].time.as_millis() <= cutoff)
}

/// Runs `FindSpace` on a trace. Returns the minimum-score split below
/// `config.max_score`, or `None` when the trace is too short or no split
/// qualifies.
///
/// # Examples
///
/// See the crate-level quickstart; unit tests below exercise hand-built
/// traces with an obvious two-cluster structure.
pub fn find_space(events: &[TraceEvent], config: &FindSpaceConfig) -> Option<SplitCandidate> {
    find_space_candidates(events, config, &SimilarityCache::new(), 1)
        .into_iter()
        .next()
}

/// Like [`find_space`], but returns up to `k` qualifying splits in
/// ascending score order with an external, reusable similarity cache.
/// Downstream validity filtering (entry-rule anchoring) can then fall
/// back to the next-best split when the global minimum does not yield an
/// enforceable entrypoint. This full-rescan path is the reference
/// implementation the incremental [`FindSpaceEngine`] is pinned against.
pub fn find_space_candidates(
    events: &[TraceEvent],
    config: &FindSpaceConfig,
    cache: &SimilarityCache,
    k: usize,
) -> Vec<SplitCandidate> {
    let n = events.len();
    let Some(pm) = p_max(events, config.l_min) else {
        return Vec::new();
    };
    if pm == 0 || k == 0 {
        return Vec::new();
    }
    let (index, sim) = similarity_relation(events, config.similarity_threshold, cache);
    let d = sim.len();
    let ev_idx: Vec<usize> = events.iter().map(|e| index[&e.abstract_id.0]).collect();

    // sample_size = |Set(S[p_max+1 : N])|.
    let mut tail_distinct = vec![false; d];
    for &e in &ev_idx[pm + 1..] {
        tail_distinct[e] = true;
    }
    let sample_size = tail_distinct.iter().filter(|b| **b).count().max(1);

    // State at p = 1: prefix = {S[0]}, suffix = S[1:N].
    let mut suffix_count = vec![0usize; d];
    for &e in &ev_idx[1..] {
        suffix_count[e] += 1;
    }
    let mut suffix_distinct = suffix_count.iter().filter(|c| **c > 0).count();
    let mut prefix_present = vec![false; d];
    // weight[x] = |{s in prefix distinct : sim(s, x)}|.
    let mut weight = vec![0usize; d];
    let first = ev_idx[0];
    prefix_present[first] = true;
    for (x, w) in weight.iter_mut().enumerate() {
        if sim[first][x] {
            *w += 1;
        }
    }
    let mut overlap: i64 = (0..d).map(|x| (weight[x] * suffix_count[x]) as i64).sum();

    let mut prefix_distinct = 1usize;
    let mut qualifying: Vec<SplitCandidate> = Vec::new();
    #[allow(clippy::needless_range_loop)]
    for p in 1..=pm {
        let overlap_score = overlap as f64 / (n - p) as f64;
        let purity_score = sigmoid(suffix_distinct as f64 / sample_size as f64 - 1.0);
        let score = overlap_score + 2.0 * purity_score - 1.0;
        if p >= config.min_prefix_events
            && prefix_distinct >= config.min_prefix_distinct
            && score < config.max_score
        {
            qualifying.push(SplitCandidate { index: p, score });
        }
        // Advance to p+1: event at index p moves from suffix to prefix.
        if p < pm {
            let e = ev_idx[p];
            overlap -= weight[e] as i64;
            suffix_count[e] -= 1;
            if suffix_count[e] == 0 {
                suffix_distinct -= 1;
            }
            if !prefix_present[e] {
                prefix_present[e] = true;
                prefix_distinct += 1;
                for x in 0..d {
                    if sim[e][x] {
                        weight[x] += 1;
                        overlap += suffix_count[x] as i64;
                    }
                }
            }
        }
    }
    qualifying.sort_by(|a, b| a.score.total_cmp(&b.score));
    // Keep the k best, but avoid near-duplicate indexes (adjacent split
    // points describe the same boundary).
    let mut out: Vec<SplitCandidate> = Vec::new();
    for c in qualifying {
        if out.len() >= k {
            break;
        }
        if out.iter().all(|o| o.index.abs_diff(c.index) > 5) {
            out.push(c);
        }
    }
    out
}

/// Direct transcription of Algorithm 1 (quadratic); reference for tests.
pub fn find_space_naive(events: &[TraceEvent], config: &FindSpaceConfig) -> Option<SplitCandidate> {
    let n = events.len();
    let pm = p_max(events, config.l_min)?;
    if pm == 0 {
        return None;
    }
    fn distinct(slice: &[TraceEvent]) -> Vec<&TraceEvent> {
        let mut seen = std::collections::HashSet::new();
        slice
            .iter()
            .filter(|e| seen.insert(e.abstract_id))
            .collect()
    }
    let sample_size = distinct(&events[pm + 1..]).len().max(1);
    let mut best: Option<SplitCandidate> = None;
    let mut score_min = config.max_score;
    for p in 1..=pm {
        let prefix = distinct(&events[..p]);
        if p < config.min_prefix_events || prefix.len() < config.min_prefix_distinct {
            continue;
        }
        let suffix = &events[p..];
        let mut overlap_size = 0usize;
        for s in &prefix {
            overlap_size += suffix
                .iter()
                .filter(|x| {
                    tree_similarity(&s.abstraction, &x.abstraction) >= config.similarity_threshold
                })
                .count();
        }
        let overlap_score = overlap_size as f64 / (n - p) as f64;
        let purity_score = sigmoid(distinct(suffix).len() as f64 / sample_size as f64 - 1.0);
        let score = overlap_score + 2.0 * purity_score - 1.0;
        if score < score_min {
            score_min = score;
            best = Some(SplitCandidate { index: p, score });
        }
    }
    best
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use std::sync::Arc;
    use taopt_ui_model::abstraction::abstract_hierarchy;
    use taopt_ui_model::{
        Action, ActivityId, ScreenId, UiHierarchy, VirtualTime, Widget, WidgetClass,
    };

    /// Builds an event whose screen identity is `label`.
    pub(crate) fn ev(t: u64, label: &str) -> TraceEvent {
        let mut root = Widget::container(WidgetClass::LinearLayout);
        // Several rows so distinct labels yield dissimilar trees.
        for i in 0..6 {
            root = root.with_child(Widget::text_view(&format!("{label}_{i}"), "t"));
        }
        let h = UiHierarchy::new(root);
        let a = Arc::new(abstract_hierarchy(&h));
        TraceEvent {
            time: VirtualTime::from_secs(t),
            screen: ScreenId(0),
            activity: ActivityId(0),
            abstract_id: a.id(),
            abstraction: a,
            action: Some(Action::Back),
            action_widget_rid: Some(Arc::from(format!("w_{label}"))),
        }
    }

    /// A trace wandering cluster A then settling into cluster B.
    pub(crate) fn two_cluster_trace(a_len: usize, b_len: usize) -> Vec<TraceEvent> {
        let mut t = 0u64;
        let mut events = Vec::new();
        for i in 0..a_len {
            events.push(ev(t, &format!("A{}", i % 5)));
            t += 2;
        }
        for i in 0..b_len {
            events.push(ev(t, &format!("B{}", i % 5)));
            t += 2;
        }
        events
    }

    #[test]
    fn detects_the_cluster_boundary() {
        let events = two_cluster_trace(40, 60);
        let cfg = FindSpaceConfig {
            l_min: VirtualDuration::from_secs(30),
            ..FindSpaceConfig::default()
        };
        let split = find_space(&events, &cfg).expect("should find the B cluster");
        assert!(
            (38..=42).contains(&split.index),
            "split at {} should be near 40",
            split.index
        );
        assert!(
            split.score < 0.5,
            "clean split scores low, got {}",
            split.score
        );
    }

    #[test]
    fn no_split_on_homogeneous_trace() {
        // One cluster revisited throughout: every prefix overlaps the
        // suffix heavily, so no split scores below 1.
        let mut events = Vec::new();
        for i in 0..80 {
            events.push(ev(i * 2, &format!("A{}", i % 4)));
        }
        let cfg = FindSpaceConfig {
            l_min: VirtualDuration::from_secs(30),
            max_score: 0.5,
            ..FindSpaceConfig::default()
        };
        assert_eq!(find_space(&events, &cfg), None);
    }

    #[test]
    fn short_trace_returns_none() {
        let events = two_cluster_trace(3, 3);
        let cfg = FindSpaceConfig {
            l_min: VirtualDuration::from_mins(5),
            ..FindSpaceConfig::default()
        };
        assert_eq!(find_space(&events, &cfg), None);
        assert_eq!(find_space(&events[..1], &cfg), None);
        assert_eq!(find_space(&[], &cfg), None);
    }

    #[test]
    fn l_min_reserves_trace_tail() {
        let events = two_cluster_trace(20, 20);
        // Total span is 80 s; an l_min of 70 s forces p_max near the start,
        // before the cluster boundary.
        let cfg = FindSpaceConfig {
            l_min: VirtualDuration::from_secs(70),
            ..FindSpaceConfig::default()
        };
        if let Some(split) = find_space(&events, &cfg) {
            assert!(split.index <= 5, "split {} must respect l_min", split.index);
        }
    }

    #[test]
    fn incremental_matches_naive() {
        for (a, b) in [(10, 30), (25, 25), (40, 15), (5, 60)] {
            let events = two_cluster_trace(a, b);
            let cfg = FindSpaceConfig {
                l_min: VirtualDuration::from_secs(20),
                ..FindSpaceConfig::default()
            };
            let fast = find_space(&events, &cfg);
            let slow = find_space_naive(&events, &cfg);
            match (fast, slow) {
                (Some(f), Some(s)) => {
                    assert_eq!(f.index, s.index, "indices diverge for ({a},{b})");
                    assert!((f.score - s.score).abs() < 1e-9);
                }
                (f, s) => assert_eq!(f, s),
            }
        }
    }

    #[test]
    fn sigmoid_properties() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(10.0) > 0.999);
        assert!(sigmoid(-10.0) < 0.001);
    }
}
