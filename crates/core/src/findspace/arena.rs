//! Per-app screen arena: interning shared across engine resets and
//! instances.
//!
//! Every [`FindSpaceEngine`](super::FindSpaceEngine) reset used to drop
//! and rebuild its abstract-id → dense-id interning table, re-hashing
//! (and re-allocating) the same few dozen screens after every accepted
//! split. The arena interns each distinct abstract screen **once per
//! app**: engines resolve events to stable `u32` arena ids through a
//! shared, append-only table and keep only a reusable sentinel vector of
//! their own. A reset clears the sentinel entries the engine actually
//! used — `O(D_local)`, no allocation, no re-hashing of survivors on the
//! next window.
//!
//! Arena ids are assignment-order dependent (two engines interning new
//! screens concurrently race for the next slot), so they must never leak
//! into analysis results. They don't: the engine's *dense local ids* are
//! per-window first-appearance order, similarity-cache keys are the
//! abstract ids themselves, and scores are functions of local structure
//! only. The `parallel_equivalence` proptests pin this.

use std::collections::HashMap;
use std::sync::RwLock;

use taopt_ui_model::TraceEvent;

use super::SCREEN_CAPACITY_HINT;

#[derive(Debug, Default)]
struct ArenaInner {
    /// Abstract-screen id → arena id, append-only.
    index: HashMap<u64, u32>,
    /// One representative event per arena id (cheap: `Arc` fields).
    reps: Vec<TraceEvent>,
}

/// Append-only interner of one app's distinct abstract screens.
///
/// Shared via `Arc` by every engine analyzing the app; read-mostly (a
/// write happens once per *new* distinct screen per app lifetime).
#[derive(Debug)]
pub struct ScreenArena {
    inner: RwLock<ArenaInner>,
}

impl Default for ScreenArena {
    fn default() -> Self {
        Self::new()
    }
}

impl ScreenArena {
    /// Creates an empty arena pre-sized for a typical app's
    /// distinct-screen population.
    pub fn new() -> Self {
        ScreenArena {
            inner: RwLock::new(ArenaInner {
                index: HashMap::with_capacity(SCREEN_CAPACITY_HINT),
                reps: Vec::with_capacity(SCREEN_CAPACITY_HINT),
            }),
        }
    }

    /// Distinct screens interned so far.
    pub fn len(&self) -> usize {
        self.inner.read().expect("screen arena poisoned").reps.len()
    }

    /// Whether no screen has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Interns the event's abstract screen (first caller wins the slot)
    /// and returns its arena id.
    pub fn resolve(&self, event: &TraceEvent) -> u32 {
        let key = event.abstract_id.0;
        if let Some(&id) = self
            .inner
            .read()
            .expect("screen arena poisoned")
            .index
            .get(&key)
        {
            return id;
        }
        let mut inner = self.inner.write().expect("screen arena poisoned");
        // Double-checked: a racing thread may have interned it meanwhile.
        if let Some(&id) = inner.index.get(&key) {
            return id;
        }
        let id = inner.reps.len() as u32;
        inner.index.insert(key, id);
        inner.reps.push(event.clone());
        id
    }

    /// The representative event of an arena id (clone is `Arc`-cheap).
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by [`resolve`](Self::resolve) on
    /// this arena.
    pub fn rep(&self, id: u32) -> TraceEvent {
        self.inner.read().expect("screen arena poisoned").reps[id as usize].clone()
    }

    /// A snapshot of every interned representative event, sorted by
    /// abstract id so the snapshot is independent of interning race order
    /// (arena ids themselves never leak into results). Used to capture
    /// warm-start bundles; re-interning the snapshot into a fresh arena
    /// pre-seeds it without affecting any analysis outcome.
    pub fn reps_snapshot(&self) -> Vec<TraceEvent> {
        let mut reps = self
            .inner
            .read()
            .expect("screen arena poisoned")
            .reps
            .clone();
        reps.sort_by_key(|e| e.abstract_id.0);
        reps
    }

    /// The abstract-screen id behind an arena id.
    pub fn abstract_id(&self, id: u32) -> u64 {
        self.inner.read().expect("screen arena poisoned").reps[id as usize]
            .abstract_id
            .0
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::ev;
    use super::*;

    #[test]
    fn resolve_is_stable_and_dedups() {
        let arena = ScreenArena::new();
        let a = ev(0, "A");
        let b = ev(2, "B");
        let ia = arena.resolve(&a);
        let ib = arena.resolve(&b);
        assert_ne!(ia, ib);
        assert_eq!(arena.resolve(&ev(10, "A")), ia, "same screen, same id");
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.abstract_id(ia), a.abstract_id.0);
        assert_eq!(arena.rep(ib).abstract_id, b.abstract_id);
    }

    #[test]
    fn concurrent_resolve_agrees() {
        let arena = std::sync::Arc::new(ScreenArena::new());
        let events: Vec<_> = (0..32).map(|i| ev(i, &format!("S{}", i % 8))).collect();
        let ids: Vec<Vec<u32>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let arena = arena.clone();
                    let events = &events;
                    s.spawn(move || events.iter().map(|e| arena.resolve(e)).collect())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(arena.len(), 8);
        // Whatever slots the race assigned, every thread sees the same
        // mapping afterwards.
        for other in &ids[1..] {
            assert_eq!(&ids[0], other);
        }
    }
}
