//! The incremental `FindSpace` engine: `O(ΔN·D + P)` per analysis.
//!
//! [`find_space_candidates`](super::find_space_candidates) re-derives its
//! whole state — interning table, similarity relation, occurrence counts,
//! overlap sums — from scratch on every call, an `O(N·D)` cost per
//! analysis of an *append-only* trace. [`FindSpaceEngine`] maintains that
//! state persistently under appends, so a trace analyzed every few
//! seconds pays for each event once instead of once per analysis.
//!
//! # Maintained state
//!
//! Per distinct abstract screen `j` (dense ids assigned in first-
//! appearance order, so `first_occ` is strictly increasing):
//!
//! * the interning table (shared per app via [`ScreenArena`]) and the
//!   `D×D` similarity relation — a flat row-major symmetric matrix whose
//!   buffer survives resets — extended by one row per *new* screen
//!   (`O(D)` cached tree-similarity decisions);
//! * `total_sim[j]` — events anywhere in the trace similar to screen `j`;
//! * `first_occ[j]` / `last_occ[j]` — first and last occurrence position.
//!
//! Per split position `p` (materialized lazily up to the largest `p_max`
//! seen, the *frontier*), two quantities that are pure functions of the
//! prefix `S[0:p]` and therefore never change as the trace grows:
//!
//! * `pair_base[p]` — similar (screen, event) pairs wholly inside the
//!   prefix: `Σ_{j : first_occ[j] < p} |{i < p : sim(j, S[i])}|`;
//! * `prefix_distinct_at[p]` — `|Set(S[0:p])|`.
//!
//! # Per-analysis recomposition
//!
//! The reference's per-split quantities fall out of the invariants above
//! in one fused sweep over `p ∈ 1..=p_max`:
//!
//! ```text
//! overlap(p)         = Σ_{j : first_occ[j] < p} total_sim[j]  −  pair_base[p]
//! suffix_distinct(p) = D − |{j : last_occ[j] < p}|
//! ```
//!
//! The first term is a running sum over `first_occ` order; the second a
//! merge against the sorted `last_occ` values. All overlap arithmetic is
//! exact integer math — identical to the reference's incremental scan —
//! and the floating-point score expression is copied verbatim, so the
//! returned [`SplitCandidate`]s are **bit-identical** to
//! `find_space_candidates` on the same prefix (pinned by proptests and
//! the golden-trace fixture).
//!
//! # Vectorized sweep
//!
//! [`analyze`](FindSpaceEngine::analyze) runs the sweep *run-segmented*:
//! both cursors (`first_occ` order, sorted `last_occ`) only move at `2D`
//! positions, so between moves `overlap_whole` and the purity term are
//! constants and the per-`p` work collapses to
//! `(overlap_whole − pair_base[p]) → score`, evaluated over contiguous
//! `pair_base` in fixed-width lanes the autovectorizer can pack
//! (integer subtract, int→f64 convert, divide, add — element-wise, no
//! horizontal operation, **no reassociation**: each lane performs the
//! reference's operations in the reference's order on the reference's
//! values, so the bits match lane width 1, 8, or 16 exactly —
//! [`analyze_with_lanes`](FindSpaceEngine::analyze_with_lanes) lets the
//! differential suite sweep widths). Eligibility hoists out of the loop
//! entirely: `prefix_distinct_at` is nondecreasing, so the eligible
//! region is a single `p` range found by binary search. The verbatim
//! scalar loop survives as
//! [`analyze_reference`](FindSpaceEngine::analyze_reference), the anchor
//! the `parallel_equivalence` suite pins the lanes against.
//!
//! # Cost
//!
//! Feeding `ΔN` appended events costs `O(ΔN·D)` (interning, similarity
//! rows, per-screen counters); one analysis costs `O(P + D log D)` for
//! the sweep plus `O(1)` amortized frontier advancement. The full-rescan
//! path pays `O(N·D)` *per analysis* for the same answer.

use std::sync::Arc;

use taopt_ui_model::TraceEvent;

use super::{sigmoid, FindSpaceConfig, ScreenArena, SimilarityCache, SplitCandidate};

/// Initial interning capacity: distinct abstract screens rarely exceed a
/// few dozen per app, so one allocation covers the common case.
pub(super) const SCREEN_CAPACITY_HINT: usize = 64;

/// Lane width [`FindSpaceEngine::analyze`] uses: wide enough to fill an
/// AVX2 register four times over at f64, small enough that short runs
/// don't round up past `p_max`.
pub const DEFAULT_LANES: usize = 8;

/// Widest lane chunk [`FindSpaceEngine::analyze_with_lanes`] accepts
/// (the score scratch buffer is this long).
pub const MAX_LANES: usize = 16;

/// Sentinel in `local_of_arena`: screen not interned in this window.
const NO_LOCAL: u32 = u32::MAX;

/// Scores `W` consecutive positions `q = start..start + W` of the
/// fused sweep:
///
/// ```text
/// (overlap_whole - pair_base[q]) as f64 / (n - q) as f64 + two_purity - 1.0
/// ```
///
/// This is the reference expression verbatim, element-wise — the
/// conversions are exact (both operands < 2^53), the divide and the
/// two adds are IEEE ops in the reference's left-to-right association,
/// and no cross-lane operation exists — so every lane's bits equal the
/// scalar loop's. The const trip count and array-ref operand are what
/// let the autovectorizer turn this into packed convert/divide when
/// the target CPU has the instructions (the bench builds with
/// `target-cpu=native`); on baseline targets it unrolls to the same
/// scalar sequence.
#[inline]
fn score_chunk<const W: usize>(
    pair_base: &[i64],
    start: usize,
    n: usize,
    overlap_whole: i64,
    two_purity: f64,
) -> [f64; W] {
    let pb: &[i64; W] = pair_base[start..start + W]
        .try_into()
        .expect("chunk is W long");
    let mut out = [0.0f64; W];
    for l in 0..W {
        let overlap = overlap_whole - pb[l];
        let overlap_score = overlap as f64 / (n - (start + l)) as f64;
        out[l] = overlap_score + two_purity - 1.0;
    }
    out
}

/// Persistent incremental `FindSpace` state for one instance's
/// append-only trace window.
///
/// Feed appended events with [`extend_from`](Self::extend_from), ask for
/// candidates with [`analyze`](Self::analyze). The engine assumes the
/// window it has ingested is immutable except for appends; when the
/// window is replaced or rebased (an accepted split moves the analysis
/// start, a re-dedicated or replaced device restarts its trace), call
/// [`reset`](Self::reset) and re-feed.
#[derive(Debug)]
pub struct FindSpaceEngine {
    config: FindSpaceConfig,
    /// Shared per-app interner: abstract id → stable arena id.
    arena: Arc<ScreenArena>,
    /// Arena id → dense local index (`NO_LOCAL` when absent). Reused
    /// across resets: only entries named in `arena_ids` are ever set.
    local_of_arena: Vec<u32>,
    /// Arena id of every dense local screen, in first-appearance order.
    arena_ids: Vec<u32>,
    /// One representative event per dense screen id.
    reps: Vec<TraceEvent>,
    /// `D×D` pairwise similarity (diagonal true): flat row-major with
    /// stride `sim_stride`, symmetric, buffer retained across resets.
    sim: Vec<bool>,
    sim_stride: usize,
    /// Dense screen id of every ingested event.
    ev_idx: Vec<usize>,
    /// Event timestamps in millis (for `p_max`).
    times: Vec<u64>,
    /// First occurrence position per screen; strictly increasing.
    first_occ: Vec<usize>,
    /// Last occurrence position per screen.
    last_occ: Vec<usize>,
    /// Events in the whole ingested window similar to screen `j`.
    total_sim: Vec<i64>,
    /// Frontier: split positions `1..=extent` are materialized.
    extent: usize,
    /// Whether screen `j` occurs in the frontier prefix `[0..extent)`.
    prefix_present: Vec<bool>,
    /// Occurrences of screen `j` in `[0..extent)`.
    prefix_count: Vec<usize>,
    /// `|{s ∈ Set(S[0:extent]) : sim(s, j)}|` — the reference's `weight`.
    weight: Vec<usize>,
    /// Distinct screens in the frontier prefix.
    prefix_distinct: usize,
    /// `pair_base[p]`: similar (screen, event) pairs inside `S[0:p]`;
    /// indices `0..=extent`, append-only.
    pair_base: Vec<i64>,
    /// `|Set(S[0:p])|` for `p ∈ 0..=extent`, append-only.
    prefix_distinct_at: Vec<usize>,
    /// Scratch: `last_occ` sorted, rebuilt per analysis.
    sorted_last: Vec<usize>,
}

impl FindSpaceEngine {
    /// Creates an empty engine with a private screen arena.
    pub fn new(config: FindSpaceConfig) -> Self {
        Self::with_arena(config, Arc::new(ScreenArena::new()))
    }

    /// Creates an empty engine sharing `arena` — all engines analyzing
    /// one app should share one arena so screens intern once per app,
    /// not once per instance per reset.
    pub fn with_arena(config: FindSpaceConfig, arena: Arc<ScreenArena>) -> Self {
        FindSpaceEngine {
            config,
            arena,
            local_of_arena: Vec::new(),
            arena_ids: Vec::new(),
            reps: Vec::new(),
            sim: Vec::new(),
            sim_stride: 0,
            ev_idx: Vec::new(),
            times: Vec::new(),
            first_occ: Vec::new(),
            last_occ: Vec::new(),
            total_sim: Vec::new(),
            extent: 0,
            prefix_present: Vec::new(),
            prefix_count: Vec::new(),
            weight: Vec::new(),
            prefix_distinct: 0,
            pair_base: vec![0],
            prefix_distinct_at: vec![0],
            sorted_last: Vec::new(),
        }
    }

    /// Number of events ingested so far.
    pub fn len(&self) -> usize {
        self.ev_idx.len()
    }

    /// Whether no events have been ingested.
    pub fn is_empty(&self) -> bool {
        self.ev_idx.is_empty()
    }

    /// Distinct abstract screens seen so far.
    pub fn distinct_screens(&self) -> usize {
        self.reps.len()
    }

    /// Abstract-screen ids of every distinct screen in the current
    /// window (first-appearance order) — the unit of scoped cache
    /// eviction when an instance is forgotten.
    pub fn abstract_screen_ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.reps.iter().map(|e| e.abstract_id.0)
    }

    /// Forgets all ingested events (keeps the config and allocations:
    /// the arena interning, the similarity-matrix buffer, and every
    /// per-screen/per-position vector's capacity survive, so re-feeding
    /// the next window allocates nothing).
    ///
    /// Must be called whenever the window this engine mirrors is rebased
    /// or replaced — an accepted split moving the analysis start, or the
    /// instance being re-dedicated onto a replacement device.
    pub fn reset(&mut self) {
        for &aid in &self.arena_ids {
            self.local_of_arena[aid as usize] = NO_LOCAL;
        }
        self.arena_ids.clear();
        let d = self.reps.len();
        for j in 0..d {
            let base = j * self.sim_stride;
            self.sim[base..base + d].fill(false);
        }
        self.reps.clear();
        self.ev_idx.clear();
        self.times.clear();
        self.first_occ.clear();
        self.last_occ.clear();
        self.total_sim.clear();
        self.extent = 0;
        self.prefix_present.clear();
        self.prefix_count.clear();
        self.weight.clear();
        self.prefix_distinct = 0;
        self.pair_base.clear();
        self.pair_base.push(0);
        self.prefix_distinct_at.clear();
        self.prefix_distinct_at.push(0);
    }

    /// Ingests the appended tail of `window`: events past
    /// [`len`](Self::len) are fed, earlier ones are assumed unchanged.
    /// `cache` supplies (and accumulates) pairwise similarity decisions;
    /// pass the same per-app cache as the rescan path.
    pub fn extend_from(&mut self, window: &[TraceEvent], cache: &SimilarityCache) {
        for e in &window[self.len().min(window.len())..] {
            self.push(e, cache);
        }
    }

    /// Ingests one appended event.
    pub fn push(&mut self, event: &TraceEvent, cache: &SimilarityCache) {
        let pos = self.ev_idx.len();
        let id = self.intern(event, cache);
        self.times.push(event.time.as_millis());
        self.ev_idx.push(id);
        let d = self.reps.len();
        // The event is similar to itself, so `total_sim[id]` is covered
        // (the diagonal is true). The relation is symmetric, so the
        // column `sim[j][id]` is read as the contiguous row `id` — an
        // unconditional, lane-packable integer add.
        let row = &self.sim[id * self.sim_stride..id * self.sim_stride + d];
        for (ts, &s) in self.total_sim.iter_mut().zip(row) {
            *ts += s as i64;
        }
        self.last_occ[id] = pos;
        if pos == 0 {
            // The first event founds the frontier prefix `S[0:1]`.
            self.prefix_present[id] = true;
            self.prefix_count[id] = 1;
            self.prefix_distinct = 1;
            let row = &self.sim[id * self.sim_stride..id * self.sim_stride + d];
            for (w, &s) in self.weight.iter_mut().zip(row) {
                *w += s as usize;
            }
            self.pair_base.push(1); // (id, 0) is the only in-prefix pair
            self.prefix_distinct_at.push(1);
            self.extent = 1;
        }
    }

    /// Grows the flat similarity matrix to hold at least `screens` rows,
    /// re-laying existing rows onto the wider stride. Doubling growth:
    /// `O(log D)` re-layouts per engine *lifetime*, zero per reset.
    fn ensure_sim_capacity(&mut self, screens: usize) {
        if screens <= self.sim_stride {
            return;
        }
        let mut stride = self.sim_stride.max(SCREEN_CAPACITY_HINT / 2);
        while stride < screens {
            stride *= 2;
        }
        let mut grown = vec![false; stride * stride];
        let d = self.reps.len();
        for j in 0..d {
            let src = j * self.sim_stride;
            let dst = j * stride;
            grown[dst..dst + d].copy_from_slice(&self.sim[src..src + d]);
        }
        self.sim = grown;
        self.sim_stride = stride;
    }

    /// Interns the event's abstract screen, extending the similarity
    /// relation and per-screen state for a new screen. Returns the dense
    /// id.
    fn intern(&mut self, event: &TraceEvent, cache: &SimilarityCache) -> usize {
        let aid = self.arena.resolve(event) as usize;
        if self.local_of_arena.len() <= aid {
            self.local_of_arena.resize(aid + 1, NO_LOCAL);
        }
        if self.local_of_arena[aid] != NO_LOCAL {
            return self.local_of_arena[aid] as usize;
        }
        let id = self.reps.len();
        self.local_of_arena[aid] = id as u32;
        self.arena_ids.push(aid as u32);
        self.ensure_sim_capacity(id + 1);
        let stride = self.sim_stride;
        // New similarity row/column against every existing representative
        // — the same ordered cache lookups the rescan path performs.
        for j in 0..id {
            let s = cache.similar(&self.reps[j], event, self.config.similarity_threshold);
            self.sim[j * stride + id] = s;
            self.sim[id * stride + j] = s;
        }
        self.sim[id * stride + id] = true;
        self.reps.push(event.clone());
        self.first_occ.push(self.ev_idx.len());
        self.last_occ.push(self.ev_idx.len());
        self.total_sim.push(0);
        self.prefix_present.push(false);
        self.prefix_count.push(0);
        // A screen first seen now cannot be in the frontier prefix, so
        // its weight is the count of prefix-distinct screens similar to
        // it.
        let row = &self.sim[id * stride..id * stride + id];
        let w = row
            .iter()
            .zip(&self.prefix_present[..id])
            .filter(|&(&s, &p)| s && p)
            .count();
        self.weight.push(w);
        id
    }

    /// Largest split index leaving at least `l_min` after it —
    /// recomputed per analysis because every append moves the trace end.
    /// The reverse scan mirrors the reference exactly (correct even for
    /// non-monotone timestamps) and in practice only walks the reserved
    /// tail.
    fn p_max(&self) -> Option<usize> {
        let n = self.times.len();
        if n < 2 {
            return None;
        }
        let cutoff = self.times[n - 1].checked_sub(self.config.l_min.as_millis())?;
        (0..n).rev().find(|&p| self.times[p] <= cutoff)
    }

    /// Advances the frontier so splits `1..=target` are materialized.
    /// Consuming one event into the prefix is `O(1)`, plus `O(D)` the
    /// first time its screen enters the prefix — `O(N + D²)` over the
    /// whole window lifetime, not per analysis.
    fn advance_to(&mut self, target: usize) {
        while self.extent < target {
            let p = self.extent;
            let e = self.ev_idx[p];
            let mut pairs: i64 = 0;
            if !self.prefix_present[e] {
                self.prefix_present[e] = true;
                self.prefix_distinct += 1;
                // Pairs (e, i) for i < p: prior prefix events similar to
                // the newly distinct screen. Row `e` is contiguous and
                // the updates unconditional — integer lanes, exact.
                let d = self.reps.len();
                let row = &self.sim[e * self.sim_stride..e * self.sim_stride + d];
                for ((&s, &c), w) in row.iter().zip(&self.prefix_count).zip(&mut self.weight) {
                    pairs += s as i64 * c as i64;
                    *w += s as usize;
                }
            }
            // Pairs (j, p): prefix-distinct screens similar to the event
            // joining the prefix (weight already includes `e` itself).
            pairs += self.weight[e] as i64;
            let prev = self.pair_base[p];
            self.pair_base.push(prev + pairs);
            self.prefix_count[e] += 1;
            self.prefix_distinct_at.push(self.prefix_distinct);
            self.extent = p + 1;
        }
    }

    /// Shared preamble of both sweeps: frontier advancement, sample
    /// size, sorted last-occurrence scratch. Returns `(n, pm, d,
    /// sample_size)` or `None` when the window can't split.
    fn prepare_sweep(&mut self, k: usize) -> Option<(usize, usize, usize, usize)> {
        let n = self.ev_idx.len();
        let pm = self.p_max()?;
        if pm == 0 || k == 0 {
            return None;
        }
        self.advance_to(pm);
        let d = self.reps.len();
        // sample_size = |Set(S[p_max+1 : N])|: screens whose last
        // occurrence falls in the reserved tail.
        let sample_size = self.last_occ.iter().filter(|&&l| l > pm).count().max(1);
        self.sorted_last.clear();
        self.sorted_last.extend_from_slice(&self.last_occ);
        self.sorted_last.sort_unstable();
        Some((n, pm, d, sample_size))
    }

    /// Shared tail of both sweeps: k-best selection with near-duplicate
    /// suppression. The reference stable-sorts by score; push order is
    /// ascending `p`, so that equals the strict total order (score,
    /// index). The dedup keeps at most `k` candidates and each kept one
    /// masks at most 10 neighbours (`|Δindex| ≤ 5`), so only the `11k`
    /// smallest can influence the output — select them instead of
    /// sorting the whole list.
    /// The selection order: (score, index) — a *strict* total order
    /// (`total_cmp` plus the index tiebreak means no two distinct
    /// candidates compare equal), which is what makes threshold pruning
    /// in the lane sweep exact.
    fn cmp_candidates(a: &SplitCandidate, b: &SplitCandidate) -> std::cmp::Ordering {
        a.score.total_cmp(&b.score).then(a.index.cmp(&b.index))
    }

    fn select_best(mut qualifying: Vec<SplitCandidate>, k: usize) -> Vec<SplitCandidate> {
        let cmp = Self::cmp_candidates;
        let m = k.saturating_mul(11);
        if m < qualifying.len() {
            qualifying.select_nth_unstable_by(m, cmp);
            qualifying.truncate(m);
        }
        qualifying.sort_unstable_by(cmp);
        let mut out: Vec<SplitCandidate> = Vec::new();
        for c in qualifying {
            if out.len() >= k {
                break;
            }
            if out.iter().all(|o| o.index.abs_diff(c.index) > 5) {
                out.push(c);
            }
        }
        out
    }

    /// Returns up to `k` qualifying splits of the ingested window in
    /// ascending score order — bit-identical to
    /// [`find_space_candidates`](super::find_space_candidates) on the
    /// same events with the same cache. Runs the vectorized sweep at
    /// `DEFAULT_LANES`.
    pub fn analyze(&mut self, k: usize) -> Vec<SplitCandidate> {
        self.analyze_with_lanes(k, DEFAULT_LANES)
    }

    /// The vectorized sweep at an explicit lane width in
    /// `1..=MAX_LANES` (clamped): runs are segmented where both
    /// cursors are constant, and each run's scores are evaluated over
    /// contiguous `pair_base` in `lanes`-wide chunks. Every width
    /// produces bit-identical output — the per-`p` expression performs
    /// the reference's operations in the reference's order, lanes only
    /// batch independent `p`s — which the `parallel_equivalence` suite
    /// sweeps to prove.
    pub fn analyze_with_lanes(&mut self, k: usize, lanes: usize) -> Vec<SplitCandidate> {
        let Some((n, pm, d, sample_size)) = self.prepare_sweep(k) else {
            return Vec::new();
        };
        let lanes = lanes.clamp(1, MAX_LANES);
        // Eligibility is monotone in `p`: `prefix_distinct_at` is
        // nondecreasing, so "first eligible p" is a binary search and
        // the per-p checks vanish from the loop.
        let elig_start = self.prefix_distinct_at[..=pm]
            .partition_point(|&pd| pd < self.config.min_prefix_distinct)
            .max(self.config.min_prefix_events)
            .max(1);

        // Exact streaming top-`m` selection: only the `m = 11k` smallest
        // candidates (by the strict (score, index) order) can influence
        // [`select_best`]'s output. `bound` is the `m`-th smallest seen
        // so far (set at each compaction); any later candidate ≥ bound
        // already has `m` candidates strictly below it, so dropping it
        // cannot change the selected set — the sweep stays bit-identical
        // to the reference while the common case (a poor score deep in
        // the window) costs one comparison instead of a push.
        let m_sel = k.saturating_mul(11).max(1);
        let mut qualifying: Vec<SplitCandidate> = Vec::with_capacity(2 * m_sel);
        let mut bound_score = f64::INFINITY;
        let max_score = self.config.max_score;
        let mut buf = [0.0f64; MAX_LANES];
        let mut overlap_whole: i64 = 0; // Σ total_sim[j] over first_occ[j] < p
        let mut fo = 0usize; // cursor over first_occ (ascending)
        let mut lo = 0usize; // cursor over sorted_last
        let mut cached_lo = usize::MAX;
        let mut two_purity = 0.0f64;
        let mut p = 1usize;
        while p <= pm {
            while fo < d && self.first_occ[fo] < p {
                overlap_whole += self.total_sim[fo];
                fo += 1;
            }
            while lo < d && self.sorted_last[lo] < p {
                lo += 1;
            }
            // The sigmoid (the one transcendental in the sweep) is
            // re-evaluated only when `lo` moved — same inputs, same bits
            // as the reference's per-`lo` memoization.
            if lo != cached_lo {
                cached_lo = lo;
                let suffix_distinct = d - lo;
                two_purity = 2.0 * sigmoid(suffix_distinct as f64 / sample_size as f64 - 1.0);
            }
            // Run end: the cursors next move at `first_occ[fo] + 1` /
            // `sorted_last[lo] + 1` (both ≥ p + 1 since the advances
            // above ran to fixpoint), so until then `overlap_whole` and
            // `two_purity` are run constants.
            let next_fo = if fo < d {
                self.first_occ[fo] + 1
            } else {
                usize::MAX
            };
            let next_lo = if lo < d {
                self.sorted_last[lo] + 1
            } else {
                usize::MAX
            };
            let run_end = next_fo.min(next_lo).min(pm + 1).max(p + 1);
            let mut start = p.max(elig_start);
            while start < run_end {
                let m = lanes.min(run_end - start);
                // The lane kernel: element-wise over contiguous
                // `pair_base`, no cross-lane operation, the reference's
                // expression verbatim (`overlap_score + two_purity - 1.0`
                // associates left-to-right exactly as the scalar loop).
                // Full chunks go through the const-width builds, whose
                // fixed trip count and array-ref operands are what the
                // autovectorizer needs to emit packed convert/divide;
                // ragged tails fall back to the identical scalar
                // expression.
                match m {
                    16 => buf[..16].copy_from_slice(&score_chunk::<16>(
                        &self.pair_base,
                        start,
                        n,
                        overlap_whole,
                        two_purity,
                    )),
                    8 => buf[..8].copy_from_slice(&score_chunk::<8>(
                        &self.pair_base,
                        start,
                        n,
                        overlap_whole,
                        two_purity,
                    )),
                    4 => buf[..4].copy_from_slice(&score_chunk::<4>(
                        &self.pair_base,
                        start,
                        n,
                        overlap_whole,
                        two_purity,
                    )),
                    _ => {
                        for (l, s) in buf[..m].iter_mut().enumerate() {
                            let q = start + l;
                            let overlap = overlap_whole - self.pair_base[q];
                            let overlap_score = overlap as f64 / (n - q) as f64;
                            *s = overlap_score + two_purity - 1.0;
                        }
                    }
                }
                for (l, &s) in buf[..m].iter().enumerate() {
                    // `s <= bound_score` is the cheap form of the prune:
                    // a strictly larger score already has `m_sel`
                    // candidates ordering strictly before it, so it can
                    // never reach `select_best`'s window; score ties
                    // (where the index tiebreak would matter) are kept.
                    if s < max_score && s <= bound_score {
                        qualifying.push(SplitCandidate {
                            index: start + l,
                            score: s,
                        });
                        if qualifying.len() == 2 * m_sel {
                            qualifying.select_nth_unstable_by(m_sel - 1, Self::cmp_candidates);
                            qualifying.truncate(m_sel);
                            bound_score = qualifying[m_sel - 1].score;
                        }
                    }
                }
                start += m;
            }
            p = run_end;
        }
        Self::select_best(qualifying, k)
    }

    /// The scalar reference sweep, kept verbatim as the anchor of the
    /// differential suite: [`analyze`](Self::analyze) must match it
    /// bit-for-bit at every lane width (and both must match
    /// [`find_space_candidates`](super::find_space_candidates)).
    pub fn analyze_reference(&mut self, k: usize) -> Vec<SplitCandidate> {
        let Some((n, pm, d, sample_size)) = self.prepare_sweep(k) else {
            return Vec::new();
        };
        let mut qualifying: Vec<SplitCandidate> = Vec::with_capacity(pm);
        let mut overlap_whole: i64 = 0; // Σ total_sim[j] over first_occ[j] < p
        let mut fo = 0usize; // cursor over first_occ (ascending)
        let mut lo = 0usize; // cursor over sorted_last
                             // `purity_score` is a function of `suffix_distinct = d - lo`
                             // alone, and `lo` only ever advances — so the sigmoid (the one
                             // transcendental in the sweep) is re-evaluated on cursor moves,
                             // `O(D)` times per analysis instead of `O(P)`. Same inputs, same
                             // bits. `two_purity` pre-applies the `2.0 *` factor; the final
                             // `overlap_score + two_purity - 1.0` performs the reference's
                             // operations in the reference's order.
        let mut cached_lo = usize::MAX;
        let mut two_purity = 0.0f64;
        for p in 1..=pm {
            while fo < d && self.first_occ[fo] < p {
                overlap_whole += self.total_sim[fo];
                fo += 1;
            }
            while lo < d && self.sorted_last[lo] < p {
                lo += 1;
            }
            if lo != cached_lo {
                cached_lo = lo;
                let suffix_distinct = d - lo;
                two_purity = 2.0 * sigmoid(suffix_distinct as f64 / sample_size as f64 - 1.0);
            }
            if p >= self.config.min_prefix_events
                && self.prefix_distinct_at[p] >= self.config.min_prefix_distinct
            {
                let overlap = overlap_whole - self.pair_base[p];
                let overlap_score = overlap as f64 / (n - p) as f64;
                let score = overlap_score + two_purity - 1.0;
                if score < self.config.max_score {
                    qualifying.push(SplitCandidate { index: p, score });
                }
            }
        }
        Self::select_best(qualifying, k)
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::{ev, two_cluster_trace};
    use super::super::{find_space_candidates, FindSpaceConfig, SimilarityCache};
    use super::*;
    use taopt_ui_model::VirtualDuration;

    fn cfg(l_min_secs: u64) -> FindSpaceConfig {
        FindSpaceConfig {
            l_min: VirtualDuration::from_secs(l_min_secs),
            ..FindSpaceConfig::default()
        }
    }

    /// Bitwise candidate-list equality.
    fn assert_identical(a: &[SplitCandidate], b: &[SplitCandidate], ctx: &str) {
        assert_eq!(a.len(), b.len(), "candidate count diverged at {ctx}");
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.index, y.index, "index diverged at {ctx}");
            assert_eq!(
                x.score.to_bits(),
                y.score.to_bits(),
                "score bits diverged at {ctx}: {} vs {}",
                x.score,
                y.score
            );
        }
    }

    #[test]
    fn incremental_feed_matches_rescan_at_every_prefix() {
        let events = two_cluster_trace(40, 60);
        let c = cfg(30);
        let mut engine = FindSpaceEngine::new(c.clone());
        let engine_cache = SimilarityCache::new();
        let rescan_cache = SimilarityCache::new();
        for end in 1..=events.len() {
            engine.extend_from(&events[..end], &engine_cache);
            let inc = engine.analyze(5);
            let full = find_space_candidates(&events[..end], &c, &rescan_cache, 5);
            assert_identical(&inc, &full, &format!("prefix {end}"));
        }
    }

    #[test]
    fn chunked_feed_matches_rescan() {
        let events = two_cluster_trace(35, 45);
        let c = cfg(20);
        for chunk in [1usize, 3, 7, 17, 50] {
            let mut engine = FindSpaceEngine::new(c.clone());
            let engine_cache = SimilarityCache::new();
            let rescan_cache = SimilarityCache::new();
            let mut end = 0;
            while end < events.len() {
                end = (end + chunk).min(events.len());
                engine.extend_from(&events[..end], &engine_cache);
                assert_identical(
                    &engine.analyze(5),
                    &find_space_candidates(&events[..end], &c, &rescan_cache, 5),
                    &format!("chunk {chunk} prefix {end}"),
                );
            }
        }
    }

    #[test]
    fn reset_matches_fresh_engine() {
        let events = two_cluster_trace(30, 50);
        let c = cfg(20);
        let cache = SimilarityCache::new();
        let mut used = FindSpaceEngine::new(c.clone());
        used.extend_from(&events, &cache);
        let _ = used.analyze(5);
        // Simulated re-dedication: the window rebases to index 30.
        used.reset();
        assert_eq!(used.len(), 0);
        used.extend_from(&events[30..], &cache);
        let mut fresh = FindSpaceEngine::new(c.clone());
        fresh.extend_from(&events[30..], &cache);
        assert_identical(&used.analyze(5), &fresh.analyze(5), "after reset");
        assert_identical(
            &used.analyze(5),
            &find_space_candidates(&events[30..], &c, &SimilarityCache::new(), 5),
            "reset vs rescan",
        );
    }

    #[test]
    fn lane_widths_and_reference_agree() {
        let events = two_cluster_trace(40, 60);
        let c = cfg(25);
        let cache = SimilarityCache::new();
        let mut reference = FindSpaceEngine::new(c.clone());
        reference.extend_from(&events, &cache);
        let anchor = reference.analyze_reference(5);
        assert!(!anchor.is_empty(), "trace should split");
        for lanes in [1usize, 2, 3, 4, 8, 16, 64] {
            let mut engine = FindSpaceEngine::new(c.clone());
            engine.extend_from(&events, &cache);
            assert_identical(
                &engine.analyze_with_lanes(5, lanes),
                &anchor,
                &format!("lanes {lanes}"),
            );
        }
    }

    #[test]
    fn shared_arena_engines_agree_with_private_arena() {
        let events = two_cluster_trace(30, 40);
        let c = cfg(20);
        let cache = SimilarityCache::new();
        let arena = Arc::new(ScreenArena::new());
        let mut shared_a = FindSpaceEngine::with_arena(c.clone(), arena.clone());
        let mut shared_b = FindSpaceEngine::with_arena(c.clone(), arena.clone());
        let mut private = FindSpaceEngine::new(c.clone());
        // Feed b a shifted window first so the arena's id assignment
        // order differs from either engine's local first-appearance
        // order — arena ids must never leak into results.
        shared_b.extend_from(&events[25..], &cache);
        shared_a.extend_from(&events, &cache);
        private.extend_from(&events, &cache);
        assert_identical(&shared_a.analyze(5), &private.analyze(5), "shared arena");
        assert_eq!(arena.len(), private.distinct_screens());
    }

    #[test]
    fn empty_and_short_windows_yield_nothing() {
        let mut engine = FindSpaceEngine::new(cfg(60));
        let cache = SimilarityCache::new();
        assert!(engine.analyze(5).is_empty());
        engine.push(&ev(0, "A"), &cache);
        assert!(engine.analyze(5).is_empty());
        engine.push(&ev(2, "B"), &cache);
        // Two events spanning 2 s cannot reserve a 60 s tail.
        assert!(engine.analyze(5).is_empty());
    }

    #[test]
    fn duplicate_timestamps_match_rescan() {
        // Bursts of identical timestamps exercise the p_max tail scan.
        let mut events = Vec::new();
        let mut t = 0u64;
        for i in 0..90usize {
            events.push(ev(t, &format!("S{}", i % 7)));
            if i % 3 != 0 {
                t += 2;
            }
        }
        let c = cfg(15);
        let mut engine = FindSpaceEngine::new(c.clone());
        let engine_cache = SimilarityCache::new();
        let rescan_cache = SimilarityCache::new();
        for end in (5..=events.len()).step_by(5) {
            engine.extend_from(&events[..end], &engine_cache);
            assert_identical(
                &engine.analyze(5),
                &find_space_candidates(&events[..end], &c, &rescan_cache, 5),
                &format!("dup-ts prefix {end}"),
            );
        }
    }
}
