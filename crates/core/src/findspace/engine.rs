//! The incremental `FindSpace` engine: `O(ΔN·D + P)` per analysis.
//!
//! [`find_space_candidates`](super::find_space_candidates) re-derives its
//! whole state — interning table, similarity relation, occurrence counts,
//! overlap sums — from scratch on every call, an `O(N·D)` cost per
//! analysis of an *append-only* trace. [`FindSpaceEngine`] maintains that
//! state persistently under appends, so a trace analyzed every few
//! seconds pays for each event once instead of once per analysis.
//!
//! # Maintained state
//!
//! Per distinct abstract screen `j` (dense ids assigned in first-
//! appearance order, so `first_occ` is strictly increasing):
//!
//! * the interning table and the `D×D` similarity relation, extended by
//!   one row per *new* screen (`O(D)` cached tree-similarity decisions);
//! * `total_sim[j]` — events anywhere in the trace similar to screen `j`;
//! * `first_occ[j]` / `last_occ[j]` — first and last occurrence position.
//!
//! Per split position `p` (materialized lazily up to the largest `p_max`
//! seen, the *frontier*), two quantities that are pure functions of the
//! prefix `S[0:p]` and therefore never change as the trace grows:
//!
//! * `pair_base[p]` — similar (screen, event) pairs wholly inside the
//!   prefix: `Σ_{j : first_occ[j] < p} |{i < p : sim(j, S[i])}|`;
//! * `prefix_distinct_at[p]` — `|Set(S[0:p])|`.
//!
//! # Per-analysis recomposition
//!
//! The reference's per-split quantities fall out of the invariants above
//! in one fused sweep over `p ∈ 1..=p_max`:
//!
//! ```text
//! overlap(p)         = Σ_{j : first_occ[j] < p} total_sim[j]  −  pair_base[p]
//! suffix_distinct(p) = D − |{j : last_occ[j] < p}|
//! ```
//!
//! The first term is a running sum over `first_occ` order; the second a
//! merge against the sorted `last_occ` values. All overlap arithmetic is
//! exact integer math — identical to the reference's incremental scan —
//! and the floating-point score expression is copied verbatim, so the
//! returned [`SplitCandidate`]s are **bit-identical** to
//! `find_space_candidates` on the same prefix (pinned by proptests and
//! the golden-trace fixture).
//!
//! # Cost
//!
//! Feeding `ΔN` appended events costs `O(ΔN·D)` (interning, similarity
//! rows, per-screen counters); one analysis costs `O(P + D log D)` for
//! the sweep plus `O(1)` amortized frontier advancement. The full-rescan
//! path pays `O(N·D)` *per analysis* for the same answer.

use std::collections::HashMap;

use taopt_ui_model::TraceEvent;

use super::{sigmoid, FindSpaceConfig, SimilarityCache, SplitCandidate};

/// Initial interning capacity: distinct abstract screens rarely exceed a
/// few dozen per app, so one allocation covers the common case.
pub(super) const SCREEN_CAPACITY_HINT: usize = 64;

/// Persistent incremental `FindSpace` state for one instance's
/// append-only trace window.
///
/// Feed appended events with [`extend_from`](Self::extend_from), ask for
/// candidates with [`analyze`](Self::analyze). The engine assumes the
/// window it has ingested is immutable except for appends; when the
/// window is replaced or rebased (an accepted split moves the analysis
/// start, a re-dedicated or replaced device restarts its trace), call
/// [`reset`](Self::reset) and re-feed.
#[derive(Debug)]
pub struct FindSpaceEngine {
    config: FindSpaceConfig,
    /// Abstract-screen id → dense index, in first-appearance order.
    index: HashMap<u64, usize>,
    /// One representative event per dense screen id.
    reps: Vec<TraceEvent>,
    /// `D×D` pairwise similarity (diagonal true).
    sim: Vec<Vec<bool>>,
    /// Dense screen id of every ingested event.
    ev_idx: Vec<usize>,
    /// Event timestamps in millis (for `p_max`).
    times: Vec<u64>,
    /// First occurrence position per screen; strictly increasing.
    first_occ: Vec<usize>,
    /// Last occurrence position per screen.
    last_occ: Vec<usize>,
    /// Events in the whole ingested window similar to screen `j`.
    total_sim: Vec<i64>,
    /// Frontier: split positions `1..=extent` are materialized.
    extent: usize,
    /// Whether screen `j` occurs in the frontier prefix `[0..extent)`.
    prefix_present: Vec<bool>,
    /// Occurrences of screen `j` in `[0..extent)`.
    prefix_count: Vec<usize>,
    /// `|{s ∈ Set(S[0:extent]) : sim(s, j)}|` — the reference's `weight`.
    weight: Vec<usize>,
    /// Distinct screens in the frontier prefix.
    prefix_distinct: usize,
    /// `pair_base[p]`: similar (screen, event) pairs inside `S[0:p]`;
    /// indices `0..=extent`, append-only.
    pair_base: Vec<i64>,
    /// `|Set(S[0:p])|` for `p ∈ 0..=extent`, append-only.
    prefix_distinct_at: Vec<usize>,
    /// Scratch: `last_occ` sorted, rebuilt per analysis.
    sorted_last: Vec<usize>,
}

impl FindSpaceEngine {
    /// Creates an empty engine.
    pub fn new(config: FindSpaceConfig) -> Self {
        FindSpaceEngine {
            config,
            index: HashMap::with_capacity(SCREEN_CAPACITY_HINT),
            reps: Vec::new(),
            sim: Vec::new(),
            ev_idx: Vec::new(),
            times: Vec::new(),
            first_occ: Vec::new(),
            last_occ: Vec::new(),
            total_sim: Vec::new(),
            extent: 0,
            prefix_present: Vec::new(),
            prefix_count: Vec::new(),
            weight: Vec::new(),
            prefix_distinct: 0,
            pair_base: vec![0],
            prefix_distinct_at: vec![0],
            sorted_last: Vec::new(),
        }
    }

    /// Number of events ingested so far.
    pub fn len(&self) -> usize {
        self.ev_idx.len()
    }

    /// Whether no events have been ingested.
    pub fn is_empty(&self) -> bool {
        self.ev_idx.is_empty()
    }

    /// Distinct abstract screens seen so far.
    pub fn distinct_screens(&self) -> usize {
        self.reps.len()
    }

    /// Forgets all ingested events (keeps the config and allocations).
    ///
    /// Must be called whenever the window this engine mirrors is rebased
    /// or replaced — an accepted split moving the analysis start, or the
    /// instance being re-dedicated onto a replacement device.
    pub fn reset(&mut self) {
        self.index.clear();
        self.reps.clear();
        self.sim.clear();
        self.ev_idx.clear();
        self.times.clear();
        self.first_occ.clear();
        self.last_occ.clear();
        self.total_sim.clear();
        self.extent = 0;
        self.prefix_present.clear();
        self.prefix_count.clear();
        self.weight.clear();
        self.prefix_distinct = 0;
        self.pair_base.clear();
        self.pair_base.push(0);
        self.prefix_distinct_at.clear();
        self.prefix_distinct_at.push(0);
    }

    /// Ingests the appended tail of `window`: events past
    /// [`len`](Self::len) are fed, earlier ones are assumed unchanged.
    /// `cache` supplies (and accumulates) pairwise similarity decisions;
    /// pass the same per-app cache as the rescan path.
    pub fn extend_from(&mut self, window: &[TraceEvent], cache: &mut SimilarityCache) {
        for e in &window[self.len().min(window.len())..] {
            self.push(e, cache);
        }
    }

    /// Ingests one appended event.
    pub fn push(&mut self, event: &TraceEvent, cache: &mut SimilarityCache) {
        let pos = self.ev_idx.len();
        let id = self.intern(event, cache);
        self.times.push(event.time.as_millis());
        self.ev_idx.push(id);
        // The event is similar to itself, so `total_sim[id]` is covered
        // by the loop (the diagonal is true).
        for j in 0..self.reps.len() {
            if self.sim[j][id] {
                self.total_sim[j] += 1;
            }
        }
        self.last_occ[id] = pos;
        if pos == 0 {
            // The first event founds the frontier prefix `S[0:1]`.
            self.prefix_present[id] = true;
            self.prefix_count[id] = 1;
            self.prefix_distinct = 1;
            for x in 0..self.reps.len() {
                if self.sim[id][x] {
                    self.weight[x] += 1;
                }
            }
            self.pair_base.push(1); // (id, 0) is the only in-prefix pair
            self.prefix_distinct_at.push(1);
            self.extent = 1;
        }
    }

    /// Interns the event's abstract screen, extending the similarity
    /// relation and per-screen state for a new screen. Returns the dense
    /// id.
    fn intern(&mut self, event: &TraceEvent, cache: &mut SimilarityCache) -> usize {
        let key = event.abstract_id.0;
        if let Some(&id) = self.index.get(&key) {
            return id;
        }
        let id = self.reps.len();
        self.index.insert(key, id);
        // New similarity row/column against every existing representative
        // — the same ordered cache lookups the rescan path performs.
        let mut row = Vec::with_capacity(id + 1);
        for (j, rep) in self.reps.iter().enumerate() {
            let s = cache.similar(rep, event, self.config.similarity_threshold);
            row.push(s);
            self.sim[j].push(s);
        }
        row.push(true);
        self.sim.push(row);
        self.reps.push(event.clone());
        self.first_occ.push(self.ev_idx.len());
        self.last_occ.push(self.ev_idx.len());
        self.total_sim.push(0);
        self.prefix_present.push(false);
        self.prefix_count.push(0);
        // A screen first seen now cannot be in the frontier prefix, so
        // its weight is the count of prefix-distinct screens similar to
        // it.
        let w = (0..id)
            .filter(|&j| self.prefix_present[j] && self.sim[j][id])
            .count();
        self.weight.push(w);
        id
    }

    /// Largest split index leaving at least `l_min` after it —
    /// recomputed per analysis because every append moves the trace end.
    /// The reverse scan mirrors the reference exactly (correct even for
    /// non-monotone timestamps) and in practice only walks the reserved
    /// tail.
    fn p_max(&self) -> Option<usize> {
        let n = self.times.len();
        if n < 2 {
            return None;
        }
        let cutoff = self.times[n - 1].checked_sub(self.config.l_min.as_millis())?;
        (0..n).rev().find(|&p| self.times[p] <= cutoff)
    }

    /// Advances the frontier so splits `1..=target` are materialized.
    /// Consuming one event into the prefix is `O(1)`, plus `O(D)` the
    /// first time its screen enters the prefix — `O(N + D²)` over the
    /// whole window lifetime, not per analysis.
    fn advance_to(&mut self, target: usize) {
        while self.extent < target {
            let p = self.extent;
            let e = self.ev_idx[p];
            let mut pairs: i64 = 0;
            if !self.prefix_present[e] {
                self.prefix_present[e] = true;
                self.prefix_distinct += 1;
                // Pairs (e, i) for i < p: prior prefix events similar to
                // the newly distinct screen.
                for x in 0..self.reps.len() {
                    if self.sim[e][x] {
                        pairs += self.prefix_count[x] as i64;
                        self.weight[x] += 1;
                    }
                }
            }
            // Pairs (j, p): prefix-distinct screens similar to the event
            // joining the prefix (weight already includes `e` itself).
            pairs += self.weight[e] as i64;
            let prev = self.pair_base[p];
            self.pair_base.push(prev + pairs);
            self.prefix_count[e] += 1;
            self.prefix_distinct_at.push(self.prefix_distinct);
            self.extent = p + 1;
        }
    }

    /// Returns up to `k` qualifying splits of the ingested window in
    /// ascending score order — bit-identical to
    /// [`find_space_candidates`](super::find_space_candidates) on the
    /// same events with the same cache.
    pub fn analyze(&mut self, k: usize) -> Vec<SplitCandidate> {
        let n = self.ev_idx.len();
        let Some(pm) = self.p_max() else {
            return Vec::new();
        };
        if pm == 0 || k == 0 {
            return Vec::new();
        }
        self.advance_to(pm);
        let d = self.reps.len();

        // sample_size = |Set(S[p_max+1 : N])|: screens whose last
        // occurrence falls in the reserved tail.
        let sample_size = self.last_occ.iter().filter(|&&l| l > pm).count().max(1);

        self.sorted_last.clear();
        self.sorted_last.extend_from_slice(&self.last_occ);
        self.sorted_last.sort_unstable();

        let mut qualifying: Vec<SplitCandidate> = Vec::with_capacity(pm);
        let mut overlap_whole: i64 = 0; // Σ total_sim[j] over first_occ[j] < p
        let mut fo = 0usize; // cursor over first_occ (ascending)
        let mut lo = 0usize; // cursor over sorted_last
                             // `purity_score` is a function of `suffix_distinct = d - lo`
                             // alone, and `lo` only ever advances — so the sigmoid (the one
                             // transcendental in the sweep) is re-evaluated on cursor moves,
                             // `O(D)` times per analysis instead of `O(P)`. Same inputs, same
                             // bits. `two_purity` pre-applies the `2.0 *` factor; the final
                             // `overlap_score + two_purity - 1.0` performs the reference's
                             // operations in the reference's order.
        let mut cached_lo = usize::MAX;
        let mut two_purity = 0.0f64;
        for p in 1..=pm {
            while fo < d && self.first_occ[fo] < p {
                overlap_whole += self.total_sim[fo];
                fo += 1;
            }
            while lo < d && self.sorted_last[lo] < p {
                lo += 1;
            }
            if lo != cached_lo {
                cached_lo = lo;
                let suffix_distinct = d - lo;
                two_purity = 2.0 * sigmoid(suffix_distinct as f64 / sample_size as f64 - 1.0);
            }
            if p >= self.config.min_prefix_events
                && self.prefix_distinct_at[p] >= self.config.min_prefix_distinct
            {
                let overlap = overlap_whole - self.pair_base[p];
                let overlap_score = overlap as f64 / (n - p) as f64;
                let score = overlap_score + two_purity - 1.0;
                if score < self.config.max_score {
                    qualifying.push(SplitCandidate { index: p, score });
                }
            }
        }
        // The reference stable-sorts by score; push order is ascending
        // `p`, so that equals the strict total order (score, index). The
        // dedup keeps at most `k` candidates and each kept one masks at
        // most 10 neighbours (`|Δindex| ≤ 5`), so only the `11k`
        // smallest can influence the output — select them instead of
        // sorting the whole list.
        let cmp = |a: &SplitCandidate, b: &SplitCandidate| {
            a.score.total_cmp(&b.score).then(a.index.cmp(&b.index))
        };
        let m = k.saturating_mul(11);
        if m < qualifying.len() {
            qualifying.select_nth_unstable_by(m, cmp);
            qualifying.truncate(m);
        }
        qualifying.sort_unstable_by(cmp);
        let mut out: Vec<SplitCandidate> = Vec::new();
        for c in qualifying {
            if out.len() >= k {
                break;
            }
            if out.iter().all(|o| o.index.abs_diff(c.index) > 5) {
                out.push(c);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::{ev, two_cluster_trace};
    use super::super::{find_space_candidates, FindSpaceConfig, SimilarityCache};
    use super::*;
    use taopt_ui_model::VirtualDuration;

    fn cfg(l_min_secs: u64) -> FindSpaceConfig {
        FindSpaceConfig {
            l_min: VirtualDuration::from_secs(l_min_secs),
            ..FindSpaceConfig::default()
        }
    }

    /// Bitwise candidate-list equality.
    fn assert_identical(a: &[SplitCandidate], b: &[SplitCandidate], ctx: &str) {
        assert_eq!(a.len(), b.len(), "candidate count diverged at {ctx}");
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.index, y.index, "index diverged at {ctx}");
            assert_eq!(
                x.score.to_bits(),
                y.score.to_bits(),
                "score bits diverged at {ctx}: {} vs {}",
                x.score,
                y.score
            );
        }
    }

    #[test]
    fn incremental_feed_matches_rescan_at_every_prefix() {
        let events = two_cluster_trace(40, 60);
        let c = cfg(30);
        let mut engine = FindSpaceEngine::new(c.clone());
        let mut engine_cache = SimilarityCache::new();
        let mut rescan_cache = SimilarityCache::new();
        for end in 1..=events.len() {
            engine.extend_from(&events[..end], &mut engine_cache);
            let inc = engine.analyze(5);
            let full = find_space_candidates(&events[..end], &c, &mut rescan_cache, 5);
            assert_identical(&inc, &full, &format!("prefix {end}"));
        }
    }

    #[test]
    fn chunked_feed_matches_rescan() {
        let events = two_cluster_trace(35, 45);
        let c = cfg(20);
        for chunk in [1usize, 3, 7, 17, 50] {
            let mut engine = FindSpaceEngine::new(c.clone());
            let mut engine_cache = SimilarityCache::new();
            let mut rescan_cache = SimilarityCache::new();
            let mut end = 0;
            while end < events.len() {
                end = (end + chunk).min(events.len());
                engine.extend_from(&events[..end], &mut engine_cache);
                assert_identical(
                    &engine.analyze(5),
                    &find_space_candidates(&events[..end], &c, &mut rescan_cache, 5),
                    &format!("chunk {chunk} prefix {end}"),
                );
            }
        }
    }

    #[test]
    fn reset_matches_fresh_engine() {
        let events = two_cluster_trace(30, 50);
        let c = cfg(20);
        let mut cache = SimilarityCache::new();
        let mut used = FindSpaceEngine::new(c.clone());
        used.extend_from(&events, &mut cache);
        let _ = used.analyze(5);
        // Simulated re-dedication: the window rebases to index 30.
        used.reset();
        assert_eq!(used.len(), 0);
        used.extend_from(&events[30..], &mut cache);
        let mut fresh = FindSpaceEngine::new(c.clone());
        fresh.extend_from(&events[30..], &mut cache);
        assert_identical(&used.analyze(5), &fresh.analyze(5), "after reset");
        assert_identical(
            &used.analyze(5),
            &find_space_candidates(&events[30..], &c, &mut SimilarityCache::new(), 5),
            "reset vs rescan",
        );
    }

    #[test]
    fn empty_and_short_windows_yield_nothing() {
        let mut engine = FindSpaceEngine::new(cfg(60));
        let mut cache = SimilarityCache::new();
        assert!(engine.analyze(5).is_empty());
        engine.push(&ev(0, "A"), &mut cache);
        assert!(engine.analyze(5).is_empty());
        engine.push(&ev(2, "B"), &mut cache);
        // Two events spanning 2 s cannot reserve a 60 s tail.
        assert!(engine.analyze(5).is_empty());
    }

    #[test]
    fn duplicate_timestamps_match_rescan() {
        // Bursts of identical timestamps exercise the p_max tail scan.
        let mut events = Vec::new();
        let mut t = 0u64;
        for i in 0..90usize {
            events.push(ev(t, &format!("S{}", i % 7)));
            if i % 3 != 0 {
                t += 2;
            }
        }
        let c = cfg(15);
        let mut engine = FindSpaceEngine::new(c.clone());
        let mut engine_cache = SimilarityCache::new();
        let mut rescan_cache = SimilarityCache::new();
        for end in (5..=events.len()).step_by(5) {
            engine.extend_from(&events[..end], &mut engine_cache);
            assert_identical(
                &engine.analyze(5),
                &find_space_candidates(&events[..end], &c, &mut rescan_cache, 5),
                &format!("dup-ts prefix {end}"),
            );
        }
    }
}
