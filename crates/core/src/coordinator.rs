//! The test coordinator (§5.3): subspace dedication, entrypoint broadcast
//! and instance lifecycle policy.

use std::collections::BTreeMap;
use std::fmt;

use taopt_toller::{EntrypointRule, InstanceId, SharedBlockList};
use taopt_ui_model::{Trace, VirtualDuration, VirtualTime};

use crate::analyzer::{AnalyzerConfig, OnlineTraceAnalyzer, SubspaceId, SubspaceInfo};
use crate::error::TaoptError;

/// Observable coordinator decisions (for logs, tests and reports).
#[derive(Debug, Clone, PartialEq)]
pub enum CoordinatorEvent {
    /// A subspace was confirmed and dedicated to an instance.
    SubspaceDedicated {
        /// The subspace.
        subspace: SubspaceId,
        /// The instance granted exclusive access.
        owner: InstanceId,
        /// When.
        at: VirtualTime,
    },
    /// An entrypoint was blocked on an instance.
    EntrypointBlocked {
        /// The subspace being sealed.
        subspace: SubspaceId,
        /// The instance losing access.
        instance: InstanceId,
        /// The rule installed.
        rule: EntrypointRule,
    },
}

impl fmt::Display for CoordinatorEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoordinatorEvent::SubspaceDedicated {
                subspace,
                owner,
                at,
            } => {
                write!(f, "{at}: dedicated {subspace} to {owner}")
            }
            CoordinatorEvent::EntrypointBlocked {
                subspace,
                instance,
                rule,
            } => {
                write!(f, "{subspace}: {rule} on {instance}")
            }
        }
    }
}

/// The test coordinator: consumes traces, confirms subspaces via the
/// analyzer, dedicates each confirmed subspace to one instance and blocks
/// its entrypoints everywhere else (including instances allocated later).
#[derive(Debug)]
pub struct TestCoordinator {
    analyzer: OnlineTraceAnalyzer,
    blocklists: BTreeMap<InstanceId, SharedBlockList>,
    stall_timeout: VirtualDuration,
    events: Vec<CoordinatorEvent>,
    tombstoned: std::collections::BTreeSet<SubspaceId>,
}

impl TestCoordinator {
    /// Creates a coordinator with the given analyzer configuration and the
    /// paper's 1-minute stall timeout.
    pub fn new(config: AnalyzerConfig) -> Self {
        TestCoordinator {
            analyzer: OnlineTraceAnalyzer::new(config),
            blocklists: BTreeMap::new(),
            stall_timeout: VirtualDuration::from_mins(1),
            events: Vec::new(),
            tombstoned: std::collections::BTreeSet::new(),
        }
    }

    /// Creates a coordinator whose analyzer is seeded from a previous
    /// campaign's [`WarmStart`](crate::warmstart::WarmStart) bundle (see
    /// [`OnlineTraceAnalyzer::with_warm_start`]). Seeded subspaces arrive
    /// confirmed and ownerless, so [`Self::register_instance`] blocks
    /// them on every booting instance and the session's orphan-repair
    /// pass re-dedicates each at the first round.
    pub fn with_warm_start(config: AnalyzerConfig, warm: &crate::warmstart::WarmStart) -> Self {
        TestCoordinator {
            analyzer: OnlineTraceAnalyzer::with_warm_start(config, warm),
            blocklists: BTreeMap::new(),
            stall_timeout: VirtualDuration::from_mins(1),
            events: Vec::new(),
            tombstoned: std::collections::BTreeSet::new(),
        }
    }

    /// Overrides the stall timeout.
    pub fn with_stall_timeout(mut self, timeout: VirtualDuration) -> Self {
        self.stall_timeout = timeout;
        self
    }

    /// The stall timeout in force.
    pub fn stall_timeout(&self) -> VirtualDuration {
        self.stall_timeout
    }

    /// The underlying analyzer (read access for reports).
    pub fn analyzer(&self) -> &OnlineTraceAnalyzer {
        &self.analyzer
    }

    /// Attaches the campaign-wide compute pool to the analyzer (see
    /// [`OnlineTraceAnalyzer::set_compute`]): batched ingestion then
    /// runs its phase A on the shared host budget.
    pub fn set_compute(&mut self, pool: std::sync::Arc<crate::campaign::pool::ComputePool>) {
        self.analyzer.set_compute(pool);
    }

    /// Decision log.
    pub fn events(&self) -> &[CoordinatorEvent] {
        &self.events
    }

    /// Consumes the coordinator and yields the final subspace registry
    /// and decision log by move. Session drivers call this once at
    /// session end instead of cloning both vectors out of a coordinator
    /// that is about to be dropped.
    pub fn into_report(self) -> (Vec<SubspaceInfo>, Vec<CoordinatorEvent>) {
        (self.analyzer.into_subspaces(), self.events)
    }

    /// Registers an instance's block list. All previously confirmed
    /// subspaces are immediately blocked on it (step 6 of the workflow:
    /// "the newly allocated testing instance C cannot access either UI
    /// subspace X or Y"). Tombstoned subspaces (exhausted by a dead owner)
    /// stay blocked too.
    pub fn register_instance(&mut self, instance: InstanceId, blocklist: SharedBlockList) {
        let rules: Vec<(SubspaceId, EntrypointRule)> = self
            .analyzer
            .confirmed()
            .filter(|s| s.owner != Some(instance))
            .flat_map(|s| s.entrypoints.iter().map(move |r| (s.id, r.clone())))
            .collect();
        {
            let mut bl = blocklist.write();
            for (sid, rule) in rules {
                bl.block(rule.clone());
                self.events.push(CoordinatorEvent::EntrypointBlocked {
                    subspace: sid,
                    instance,
                    rule,
                });
            }
        }
        self.blocklists.insert(instance, blocklist);
    }

    /// Forgets a deallocated instance, settling its dedications:
    ///
    /// * subspaces the dead owner had **substantially explored** (fraction
    ///   of subspace screens visited ≥ `EXHAUSTED_FRACTION`) are
    ///   *tombstoned* — they stay blocked on every instance, exactly as
    ///   the paper allocates replacements "with all entrypoints to
    ///   identified UI subspaces blocked" (§5.3): a stalled owner has
    ///   finished its territory, so nobody needs to re-explore it;
    /// * unfinished subspaces are redistributed round-robin among the
    ///   surviving instances, whose block lists are opened accordingly.
    ///
    /// `visited` is the set of abstract screens the dead instance
    /// explored (from its trace).
    pub fn unregister_instance_with_trace(
        &mut self,
        instance: InstanceId,
        visited: &std::collections::BTreeSet<taopt_ui_model::AbstractScreenId>,
    ) {
        const EXHAUSTED_FRACTION: f64 = 0.95;
        self.blocklists.remove(&instance);
        // The id will never analyze again (replacements get fresh ids);
        // drop its cursor and incremental FindSpace engine now so a
        // session with heavy churn does not accumulate dead windows.
        self.analyzer.forget_instance(instance);
        let owned: Vec<(SubspaceId, bool)> = self
            .analyzer
            .confirmed()
            .filter(|s| s.owner == Some(instance))
            .map(|s| {
                let seen = s.screens.intersection(visited).count();
                let exhausted = !s.screens.is_empty()
                    && seen as f64 / s.screens.len() as f64 >= EXHAUSTED_FRACTION;
                (s.id, exhausted)
            })
            .collect();
        if owned.is_empty() {
            return;
        }
        let survivors: Vec<InstanceId> = self.blocklists.keys().copied().collect();
        let mut heir_cursor = 0usize;
        for (sid, exhausted) in owned {
            if exhausted {
                // Tombstone: leave it blocked everywhere; the dead owner
                // keeps the dedication on record and nobody re-explores.
                self.tombstoned.insert(sid);
                continue;
            }
            if survivors.is_empty() {
                // Orphan: unfinished, but nobody is left to inherit. It
                // stays on record as owned by the dead instance so a
                // later [`TestCoordinator::rededicate`] (or a resilience
                // loop) can hand it to a future allocation.
                continue;
            }
            let heir = survivors[heir_cursor % survivors.len()];
            heir_cursor += 1;
            let entrypoints = self
                .analyzer
                .subspace(sid)
                .map(|s| s.entrypoints.clone())
                .unwrap_or_default();
            self.analyzer.set_owner(sid, heir);
            if let Some(bl) = self.blocklists.get(&heir) {
                let mut bl = bl.write();
                for rule in &entrypoints {
                    bl.unblock(rule);
                }
            }
            self.events.push(CoordinatorEvent::SubspaceDedicated {
                subspace: sid,
                owner: heir,
                at: VirtualTime::ZERO,
            });
        }
    }

    /// [`TestCoordinator::unregister_instance_with_trace`] without a
    /// trace: every owned subspace is treated as unfinished.
    pub fn unregister_instance(&mut self, instance: InstanceId) {
        self.unregister_instance_with_trace(instance, &std::collections::BTreeSet::new());
    }

    /// Instances currently registered.
    pub fn registered(&self) -> impl Iterator<Item = InstanceId> + '_ {
        self.blocklists.keys().copied()
    }

    /// Feeds one instance's trace to the analyzer and applies any newly
    /// confirmed subspaces: the reporting instance (or the first reporter
    /// still registered) becomes the owner; every other instance gets the
    /// subspace's entrypoints blocked.
    ///
    /// Returns the subspaces confirmed by this call.
    ///
    /// # Errors
    ///
    /// Returns [`TaoptError::UnknownSubspace`] if the analyzer confirms a
    /// subspace id it cannot resolve — an internal-invariant breach that
    /// used to panic; any subspaces dedicated before the failure keep
    /// their dedications.
    pub fn process_trace(
        &mut self,
        instance: InstanceId,
        trace: &Trace,
        now: VirtualTime,
    ) -> Result<Vec<SubspaceId>, TaoptError> {
        let confirmed = self.analyzer.maybe_analyze(instance, trace, now);
        for sid in &confirmed {
            self.dedicate(*sid, now)?;
        }
        Ok(confirmed)
    }

    /// Batched [`process_trace`](Self::process_trace): feeds every
    /// instance's trace for one round in a single analyzer call
    /// ([`OnlineTraceAnalyzer::ingest_round`]) and dedicates each newly
    /// confirmed subspace in confirmation order — the same dedication
    /// sequence the per-instance loop produces (pinned by the
    /// golden-trace second arm and the `parallel_equivalence` suite).
    ///
    /// # Errors
    ///
    /// Returns the first [`TaoptError::UnknownSubspace`] after
    /// attempting every dedication; earlier successful dedications keep
    /// their effect, exactly as in the serial loop.
    pub fn process_traces(
        &mut self,
        batch: &[(InstanceId, &Trace)],
        now: VirtualTime,
    ) -> Result<Vec<SubspaceId>, TaoptError> {
        let confirmed = self.analyzer.ingest_round(batch, now);
        let mut first_err = None;
        for sid in &confirmed {
            if let Err(e) = self.dedicate(*sid, now) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(confirmed),
        }
    }

    /// Feeds a pre-built subspace report directly (used by streaming
    /// deployments and tests, bypassing `FindSpace`): registers it with
    /// the analyzer and dedicates it if it becomes newly confirmed.
    ///
    /// # Errors
    ///
    /// Returns [`TaoptError::UnknownSubspace`] if the newly confirmed
    /// subspace cannot be resolved (see [`TestCoordinator::process_trace`]).
    pub fn register_report(
        &mut self,
        instance: InstanceId,
        entry: EntrypointRule,
        screens: std::collections::BTreeSet<taopt_ui_model::AbstractScreenId>,
        now: VirtualTime,
    ) -> Result<Option<SubspaceId>, TaoptError> {
        let confirmed = self.analyzer.register_report(instance, entry, screens, now);
        if let Some(sid) = confirmed {
            self.dedicate(sid, now)?;
        }
        Ok(confirmed)
    }

    /// Dedicates a confirmed subspace: picks an owner and broadcasts the
    /// block rules to everyone else.
    ///
    /// # Errors
    ///
    /// Returns [`TaoptError::UnknownSubspace`] when `sid` is not in the
    /// analyzer's registry. Confirmed ids always are, so callers treat
    /// this as a diagnosable internal error rather than a panic.
    fn dedicate(&mut self, sid: SubspaceId, now: VirtualTime) -> Result<(), TaoptError> {
        let telemetry = taopt_telemetry::global();
        let _span = telemetry.span("dedicate").subspace(sid.0).at(now).enter();
        let (owner, entrypoints) = {
            let info = self
                .analyzer
                .subspace(sid)
                .ok_or(TaoptError::UnknownSubspace(sid.0))?;
            let owner = info
                .reporters
                .iter()
                .copied()
                .find(|r| self.blocklists.contains_key(r))
                .or_else(|| self.blocklists.keys().next().copied());
            (owner, info.entrypoints.clone())
        };
        let Some(owner) = owner else { return Ok(()) };
        self.analyzer.set_owner(sid, owner);
        self.events.push(CoordinatorEvent::SubspaceDedicated {
            subspace: sid,
            owner,
            at: now,
        });
        telemetry.counter("subspaces_dedicated_total").inc();
        let blocked = telemetry.counter("entrypoints_blocked_total");
        for (inst, bl) in &self.blocklists {
            if *inst == owner {
                // The owner keeps access; make sure nothing lingers from
                // an earlier registration.
                let mut bl = bl.write();
                for rule in &entrypoints {
                    bl.unblock(rule);
                }
                continue;
            }
            let mut bl = bl.write();
            for rule in &entrypoints {
                bl.block(rule.clone());
                blocked.inc();
                self.events.push(CoordinatorEvent::EntrypointBlocked {
                    subspace: sid,
                    instance: *inst,
                    rule: rule.clone(),
                });
            }
        }
        Ok(())
    }

    /// Whether an instance should be deallocated: it "does not discover
    /// new UI screens for `l_min^short` = 1 minute" (§5.3).
    pub fn should_deallocate(&self, last_new_screen: VirtualTime, now: VirtualTime) -> bool {
        now.since(last_new_screen) >= self.stall_timeout
    }

    /// Subspaces deliberately retired because their (dead) owner had
    /// substantially explored them.
    pub fn tombstoned(&self) -> impl Iterator<Item = SubspaceId> + '_ {
        self.tombstoned.iter().copied()
    }

    /// Confirmed subspaces whose owner is no longer registered and that
    /// were *not* tombstoned — i.e. unfinished territory currently blocked
    /// on every live instance. An empty return is the liveness invariant
    /// the resilience layer maintains: no subspace is permanently
    /// unreachable while instances remain.
    pub fn orphaned_subspaces(&self) -> Vec<SubspaceId> {
        self.analyzer
            .confirmed()
            .filter(|s| !self.tombstoned.contains(&s.id))
            .filter(|s| s.owner.is_none_or(|o| !self.blocklists.contains_key(&o)))
            .map(|s| s.id)
            .collect()
    }

    /// Whether any confirmed subspace is currently orphaned — the
    /// allocation-free check the per-round repair pass runs first, since
    /// orphans are rare even under churn.
    pub fn has_orphans(&self) -> bool {
        self.analyzer
            .confirmed()
            .filter(|s| !self.tombstoned.contains(&s.id))
            .any(|s| s.owner.is_none_or(|o| !self.blocklists.contains_key(&o)))
    }

    /// Re-dedicates an orphaned subspace to a currently registered
    /// instance: the heir's entrypoints are unblocked, everyone else's
    /// stay (idempotently) blocked. Returns the heir, or `None` when no
    /// instance is registered.
    pub fn rededicate(&mut self, sid: SubspaceId, now: VirtualTime) -> Option<InstanceId> {
        let heir = self.blocklists.keys().next().copied()?;
        let entrypoints = self.analyzer.subspace(sid).map(|s| s.entrypoints.clone())?;
        taopt_telemetry::global()
            .counter("subspaces_rededicated_total")
            .inc();
        self.analyzer.set_owner(sid, heir);
        for (inst, bl) in &self.blocklists {
            let mut bl = bl.write();
            for rule in &entrypoints {
                if *inst == heir {
                    bl.unblock(rule);
                } else {
                    bl.block(rule.clone());
                }
            }
        }
        self.events.push(CoordinatorEvent::SubspaceDedicated {
            subspace: sid,
            owner: heir,
            at: now,
        });
        Some(heir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use taopt_toller::enforce::shared_block_list;
    use taopt_ui_model::AbstractScreenId;

    fn rule(host: u64, rid: &str) -> EntrypointRule {
        EntrypointRule::new(AbstractScreenId(host), rid)
    }

    fn screens(ids: &[u64]) -> BTreeSet<AbstractScreenId> {
        ids.iter().map(|i| AbstractScreenId(*i)).collect()
    }

    #[test]
    fn dedication_blocks_everyone_but_the_owner() {
        let mut c = TestCoordinator::new(AnalyzerConfig::resource_mode());
        let bl0 = shared_block_list();
        let bl1 = shared_block_list();
        c.register_instance(InstanceId(0), bl0.clone());
        c.register_instance(InstanceId(1), bl1.clone());
        // Simulate the analyzer confirming a subspace reported by inst 0.
        let sid = c
            .analyzer
            .register_report(
                InstanceId(0),
                rule(1, "tab_shop"),
                screens(&[5, 6]),
                VirtualTime::ZERO,
            )
            .expect("resource mode confirms at once");
        c.dedicate(sid, VirtualTime::ZERO).unwrap();
        assert!(bl0.read().is_empty(), "owner keeps access");
        assert_eq!(bl1.read().rules().len(), 1, "other instance blocked");
        assert_eq!(
            c.analyzer().subspace(sid).unwrap().owner,
            Some(InstanceId(0))
        );
        assert!(matches!(
            c.events()[0],
            CoordinatorEvent::SubspaceDedicated {
                owner: InstanceId(0),
                ..
            }
        ));
    }

    #[test]
    fn late_instances_inherit_existing_blocks() {
        let mut c = TestCoordinator::new(AnalyzerConfig::resource_mode());
        let bl0 = shared_block_list();
        c.register_instance(InstanceId(0), bl0);
        let sid = c
            .analyzer
            .register_report(
                InstanceId(0),
                rule(1, "tab_a"),
                screens(&[2, 3]),
                VirtualTime::ZERO,
            )
            .unwrap();
        c.dedicate(sid, VirtualTime::ZERO).unwrap();
        // Instance 2 arrives later: blocked on registration.
        let bl2 = shared_block_list();
        c.register_instance(InstanceId(2), bl2.clone());
        assert_eq!(bl2.read().rules().len(), 1);
    }

    #[test]
    fn dedicating_an_unknown_subspace_is_a_typed_error() {
        let mut c = TestCoordinator::new(AnalyzerConfig::resource_mode());
        c.register_instance(InstanceId(0), shared_block_list());
        assert_eq!(
            c.dedicate(SubspaceId(999), VirtualTime::ZERO),
            Err(crate::error::TaoptError::UnknownSubspace(999))
        );
        // Nothing was dedicated or logged on the failure path.
        assert!(c.events().is_empty());
    }

    #[test]
    fn stall_detection_uses_timeout() {
        let c = TestCoordinator::new(AnalyzerConfig::duration_mode())
            .with_stall_timeout(VirtualDuration::from_secs(30));
        let t0 = VirtualTime::from_secs(100);
        assert!(!c.should_deallocate(t0, VirtualTime::from_secs(120)));
        assert!(c.should_deallocate(t0, VirtualTime::from_secs(130)));
    }

    #[test]
    fn orphaned_subspaces_can_be_rededicated_to_late_arrivals() {
        let mut c = TestCoordinator::new(AnalyzerConfig::resource_mode());
        let bl0 = shared_block_list();
        c.register_instance(InstanceId(0), bl0);
        let sid = c
            .analyzer
            .register_report(
                InstanceId(0),
                rule(2, "tab_x"),
                screens(&[7, 8]),
                VirtualTime::ZERO,
            )
            .unwrap();
        c.dedicate(sid, VirtualTime::ZERO).unwrap();
        // The sole owner dies with the subspace barely explored: no
        // survivors, so it becomes an orphan (not a tombstone).
        c.unregister_instance(InstanceId(0));
        assert_eq!(c.orphaned_subspaces(), vec![sid]);
        assert_eq!(c.tombstoned().count(), 0);
        // A later instance arrives blocked (register blocks confirmed
        // subspaces), then inherits the orphan.
        let bl1 = shared_block_list();
        c.register_instance(InstanceId(1), bl1.clone());
        assert_eq!(bl1.read().rules().len(), 1);
        let heir = c.rededicate(sid, VirtualTime::from_secs(9));
        assert_eq!(heir, Some(InstanceId(1)));
        assert!(bl1.read().is_empty(), "heir regains access");
        assert!(c.orphaned_subspaces().is_empty());
    }

    #[test]
    fn exhausted_subspaces_tombstone_instead_of_orphaning() {
        let mut c = TestCoordinator::new(AnalyzerConfig::resource_mode());
        let bl0 = shared_block_list();
        c.register_instance(InstanceId(0), bl0);
        let sid = c
            .analyzer
            .register_report(
                InstanceId(0),
                rule(3, "tab_y"),
                screens(&[1, 2]),
                VirtualTime::ZERO,
            )
            .unwrap();
        c.dedicate(sid, VirtualTime::ZERO).unwrap();
        // The owner dies having visited every subspace screen.
        c.unregister_instance_with_trace(InstanceId(0), &screens(&[1, 2]));
        assert_eq!(c.tombstoned().collect::<Vec<_>>(), vec![sid]);
        assert!(
            c.orphaned_subspaces().is_empty(),
            "tombstones are not orphans"
        );
    }

    #[test]
    fn warm_seeded_subspaces_block_everyone_then_rededicate_immediately() {
        use crate::warmstart::{WarmStart, WarmSubspace};
        let warm = WarmStart {
            subspaces: vec![WarmSubspace {
                entrypoints: vec![rule(1, "tab_shop")],
                screens: screens(&[5, 6, 7]),
            }],
            ..WarmStart::default()
        };
        let mut c = TestCoordinator::with_warm_start(AnalyzerConfig::duration_mode(), &warm);
        // Booting instances inherit the block: carried territory is
        // sealed until an owner is chosen.
        let bl0 = shared_block_list();
        let bl1 = shared_block_list();
        c.register_instance(InstanceId(0), bl0.clone());
        c.register_instance(InstanceId(1), bl1.clone());
        assert_eq!(bl0.read().rules().len(), 1);
        assert_eq!(bl1.read().rules().len(), 1);
        // Ownerless + confirmed = orphaned: the per-round repair pass
        // re-dedicates at the first opportunity.
        let orphans = c.orphaned_subspaces();
        assert_eq!(orphans.len(), 1);
        let heir = c.rededicate(orphans[0], VirtualTime::from_secs(10));
        assert_eq!(heir, Some(InstanceId(0)));
        assert!(bl0.read().is_empty(), "heir regains access");
        assert_eq!(bl1.read().rules().len(), 1, "non-owner stays blocked");
    }

    #[test]
    fn unregister_stops_future_blocks() {
        let mut c = TestCoordinator::new(AnalyzerConfig::resource_mode());
        let bl0 = shared_block_list();
        let bl1 = shared_block_list();
        c.register_instance(InstanceId(0), bl0);
        c.register_instance(InstanceId(1), bl1.clone());
        c.unregister_instance(InstanceId(1));
        let sid = c
            .analyzer
            .register_report(
                InstanceId(0),
                rule(4, "t"),
                screens(&[9]),
                VirtualTime::ZERO,
            )
            .unwrap();
        c.dedicate(sid, VirtualTime::ZERO).unwrap();
        assert!(
            bl1.read().is_empty(),
            "deallocated instance no longer updated"
        );
    }
}
