//! Streaming deployment of the trace analyzer.
//!
//! The lock-step [`crate::session::ParallelSession`] calls the analyzer
//! synchronously, which is ideal for reproducible experiments. A real
//! testing cloud looks different: devices produce Toller events
//! continuously and one coordinator process consumes the merged stream.
//! [`StreamingAnalyzer`] provides that deployment shape — a worker thread
//! drains a [`taopt_toller::EventBus`], rebuilds per-instance traces, runs
//! the online analysis, and publishes confirmed subspaces through a shared
//! snapshot that device loops read when applying enforcement.
//!
//! The transport is not trusted: every [`taopt_toller::BusEvent`] carries
//! a per-instance sequence number and the worker delivers events to the
//! analyzer in strict sequence order. Delayed events are buffered until
//! their predecessors arrive, duplicates are dropped, and a gap that
//! persists (a genuinely lost event) is eventually skipped so one drop
//! cannot stall analysis forever. The [`StreamStats`] counters expose what
//! the repair layer saw.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::RecvTimeoutError;
use parking_lot::{Condvar, Mutex};

use taopt_toller::{BusEvent, EventBus, InstanceId};
use taopt_ui_model::{Trace, TraceEvent, VirtualTime};

use crate::analyzer::{AnalyzerConfig, OnlineTraceAnalyzer, SubspaceInfo};

/// Skip a sequence gap once this many newer events are buffered behind it.
const GAP_BUFFER_LIMIT: usize = 8;
/// Skip a sequence gap once the stream has advanced this far past it.
const GAP_SPAN_LIMIT: u64 = 32;
/// Skip a sequence gap after this many consecutive idle receive timeouts
/// with the gap still open (the missing event is not coming).
const GAP_STALL_LIMIT: u32 = 3;

/// Stream-repair counters: what the sequence layer observed and did.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StreamStats {
    /// Sequence numbers given up on (events presumed lost in transit).
    pub gaps: usize,
    /// Events dropped because their sequence number was already seen.
    pub duplicates: usize,
    /// Events that arrived ahead of a predecessor and were buffered.
    pub reordered: usize,
}

impl StreamStats {
    /// Component-wise sum (per-lane stats folded into a session total).
    pub fn merged(self, other: StreamStats) -> StreamStats {
        StreamStats {
            gaps: self.gaps + other.gaps,
            duplicates: self.duplicates + other.duplicates,
            reordered: self.reordered + other.reordered,
        }
    }
}

/// Shared snapshot of the analyzer's findings.
#[derive(Debug, Default)]
struct Snapshot {
    subspaces: Vec<SubspaceInfo>,
    events_consumed: usize,
    stream: StreamStats,
}

#[derive(Debug, Default)]
struct SnapshotCell {
    state: Mutex<Snapshot>,
    changed: Condvar,
}

/// Per-instance sequence-order repair state (also used by the chaos
/// session to rebuild coordinator-view traces from a faulty bus).
#[derive(Debug, Default)]
pub(crate) struct Reorder {
    /// Next sequence number owed to the analyzer.
    expected: u64,
    /// Out-of-order arrivals waiting for their predecessors.
    pending: BTreeMap<u64, TraceEvent>,
    /// Consecutive idle timeouts with a gap open.
    stalls: u32,
}

impl Reorder {
    /// Accepts one bus event; returns events now deliverable in order.
    /// Updates `stats` for duplicates/reorders.
    pub(crate) fn accept(
        &mut self,
        seq: u64,
        event: TraceEvent,
        stats: &mut StreamStats,
    ) -> Vec<TraceEvent> {
        if seq < self.expected || self.pending.contains_key(&seq) {
            stats.duplicates += 1;
            // Faults are rare, so the registry lookup stays off the
            // in-order delivery path.
            taopt_telemetry::global()
                .counter("stream_duplicates_total")
                .inc();
            return Vec::new();
        }
        if seq > self.expected {
            stats.reordered += 1;
            taopt_telemetry::global()
                .counter("stream_reordered_total")
                .inc();
        }
        self.pending.insert(seq, event);
        self.stalls = 0;
        let mut out = self.drain_in_order();
        // A wide buffer means the head gap is a real loss, not jitter.
        if self.pending.len() >= GAP_BUFFER_LIMIT || self.span() > GAP_SPAN_LIMIT {
            out.extend(self.skip_gap(stats));
        }
        out
    }

    /// Delivers the contiguous run starting at `expected`.
    fn drain_in_order(&mut self) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        while let Some(e) = self.pending.remove(&self.expected) {
            self.expected += 1;
            out.push(e);
        }
        out
    }

    /// Distance from `expected` to the newest buffered sequence number.
    fn span(&self) -> u64 {
        self.pending
            .keys()
            .next_back()
            .map_or(0, |max| max.saturating_sub(self.expected))
    }

    /// Gives up on the sequence numbers between `expected` and the oldest
    /// buffered event, then delivers what that unblocks.
    fn skip_gap(&mut self, stats: &mut StreamStats) -> Vec<TraceEvent> {
        let Some(&first) = self.pending.keys().next() else {
            return Vec::new();
        };
        stats.gaps += (first - self.expected) as usize;
        taopt_telemetry::global()
            .counter("stream_gaps_total")
            .add(first - self.expected);
        self.expected = first;
        self.drain_in_order()
    }

    /// Called on an idle receive timeout; skips a stale gap after
    /// [`GAP_STALL_LIMIT`] idle rounds.
    fn on_idle(&mut self, stats: &mut StreamStats) -> Vec<TraceEvent> {
        if self.pending.is_empty() {
            self.stalls = 0;
            return Vec::new();
        }
        self.stalls += 1;
        if self.stalls >= GAP_STALL_LIMIT {
            self.stalls = 0;
            self.skip_gap(stats)
        } else {
            Vec::new()
        }
    }

    /// Final flush: deliver everything still buffered, counting the gaps.
    pub(crate) fn flush(&mut self, stats: &mut StreamStats) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        while !self.pending.is_empty() {
            out.extend(self.skip_gap(stats));
        }
        out
    }
}

/// Per-instance state of the bus seam inside a [`crate::campaign`]
/// session step: sequence stamping on the publish side, a
/// [`crate::campaign::BusTransport`] fate decision per event, and
/// [`Reorder`] repair of the survivors into the **coordinator-view
/// trace** — the only trace the coordinator analyzes when the bus layer
/// is engaged.
#[derive(Debug)]
pub(crate) struct BusLane {
    /// Next sequence number to stamp.
    seq: u64,
    /// Instance trace events already pushed through the transport.
    forwarded: usize,
    /// Events held back by a delay fault, re-sent next pump.
    delayed: Vec<(u64, TraceEvent)>,
    repair: Reorder,
    coord_trace: Trace,
    stats: StreamStats,
    published_counter: taopt_telemetry::Counter,
    consumed_counter: taopt_telemetry::Counter,
}

impl BusLane {
    pub(crate) fn new() -> Self {
        let telemetry = taopt_telemetry::global();
        BusLane {
            seq: 0,
            forwarded: 0,
            delayed: Vec::new(),
            repair: Reorder::default(),
            coord_trace: Trace::new(),
            stats: StreamStats::default(),
            published_counter: telemetry.counter_labeled(
                "bus_events_published_total",
                taopt_telemetry::Labels::seam("bus"),
            ),
            consumed_counter: telemetry.counter("stream_events_consumed_total"),
        }
    }

    /// Forwards `trace`'s new events through the transport and appends
    /// the survivors, repaired into order, to the coordinator-view trace.
    pub(crate) fn pump(
        &mut self,
        transport: &dyn crate::campaign::BusTransport,
        lane: u32,
        trace: &Trace,
        now: VirtualTime,
    ) {
        let gaps_before = self.stats.gaps;
        let mut batch: Vec<(u64, TraceEvent)> = std::mem::take(&mut self.delayed);
        for ev in &trace.events()[self.forwarded..] {
            let seq = self.seq;
            self.seq += 1;
            match transport.fate(lane, seq, now) {
                crate::campaign::EventFate::Deliver => batch.push((seq, ev.clone())),
                crate::campaign::EventFate::Drop => {}
                crate::campaign::EventFate::Duplicate => {
                    batch.push((seq, ev.clone()));
                    batch.push((seq, ev.clone()));
                }
                crate::campaign::EventFate::Delay => self.delayed.push((seq, ev.clone())),
            }
        }
        self.forwarded = trace.len();
        let published = batch.len() as u64;
        let mut consumed = 0u64;
        for (seq, ev) in batch {
            for ready in self.repair.accept(seq, ev, &mut self.stats) {
                self.coord_trace.push(ready);
                consumed += 1;
            }
        }
        // Mirror the streaming path's bus accounting so chaos and clean
        // sessions expose the same series.
        self.published_counter.add(published);
        self.consumed_counter.add(consumed);
        for _ in gaps_before..self.stats.gaps {
            transport.gap_repaired(lane, now);
        }
    }

    /// Delivers everything still in flight (end of life for the lane).
    pub(crate) fn flush(&mut self) {
        for (seq, ev) in std::mem::take(&mut self.delayed) {
            for ready in self.repair.accept(seq, ev, &mut self.stats) {
                self.coord_trace.push(ready);
            }
        }
        for ready in self.repair.flush(&mut self.stats) {
            self.coord_trace.push(ready);
        }
    }

    /// What the coordinator sees of this instance.
    pub(crate) fn coord_trace(&self) -> &Trace {
        &self.coord_trace
    }

    /// Repair counters so far.
    pub(crate) fn stats(&self) -> StreamStats {
        self.stats
    }
}

/// A background analyzer consuming a Toller event bus.
///
/// Dropping the handle stops the worker. The worker also stops when every
/// sender side of the bus has been dropped.
#[derive(Debug)]
pub struct StreamingAnalyzer {
    cell: Arc<SnapshotCell>,
    stop: Arc<std::sync::atomic::AtomicBool>,
    worker: Option<JoinHandle<()>>,
}

impl StreamingAnalyzer {
    /// Spawns the worker thread on the given bus.
    pub fn spawn(bus: &EventBus, config: AnalyzerConfig) -> Self {
        let rx = bus.receiver();
        let cell = Arc::new(SnapshotCell::default());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let worker_cell = Arc::clone(&cell);
        let worker_stop = Arc::clone(&stop);
        let worker = std::thread::spawn(move || {
            let consumed_counter =
                taopt_telemetry::global().counter("stream_events_consumed_total");
            let mut analyzer = OnlineTraceAnalyzer::new(config);
            let mut traces: HashMap<InstanceId, Trace> = HashMap::new();
            let mut reorders: HashMap<InstanceId, Reorder> = HashMap::new();
            // Registry version last published to the snapshot; the
            // sentinel forces the initial publication.
            let published_version = std::cell::Cell::new(u64::MAX);
            let deliver = |instance: InstanceId,
                           events: Vec<TraceEvent>,
                           stats: StreamStats,
                           analyzer: &mut OnlineTraceAnalyzer,
                           traces: &mut HashMap<InstanceId, Trace>| {
                let delivered = events.len();
                consumed_counter.add(delivered as u64);
                let trace = traces.entry(instance).or_default();
                let mut now = VirtualTime::ZERO;
                for event in events {
                    now = event.time;
                    trace.push(event);
                }
                if delivered > 0 {
                    analyzer.maybe_analyze(instance, trace, now);
                }
                let mut snap = worker_cell.state.lock();
                snap.events_consumed += delivered;
                snap.stream = stats;
                // Publish only on change: readers clone this vector on
                // every poll, so rewriting it per event is pure churn.
                // The analyzer's version counter makes the check O(1)
                // instead of a full-vector comparison.
                let version = analyzer.version();
                if published_version.get() != version {
                    published_version.set(version);
                    snap.subspaces = analyzer.subspaces().to_vec();
                }
                drop(snap);
                worker_cell.changed.notify_all();
            };
            let mut stats = StreamStats::default();
            loop {
                if worker_stop.load(std::sync::atomic::Ordering::Relaxed) {
                    break;
                }
                match rx.recv_timeout(std::time::Duration::from_millis(20)) {
                    Ok(BusEvent {
                        instance,
                        seq,
                        event,
                    }) => {
                        let ready = reorders
                            .entry(instance)
                            .or_default()
                            .accept(seq, event, &mut stats);
                        deliver(instance, ready, stats, &mut analyzer, &mut traces);
                    }
                    Err(RecvTimeoutError::Timeout) => {
                        for (&instance, r) in reorders.iter_mut() {
                            let ready = r.on_idle(&mut stats);
                            if !ready.is_empty() {
                                deliver(instance, ready, stats, &mut analyzer, &mut traces);
                            }
                        }
                    }
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            // Senders are gone (or we were stopped): anything still
            // buffered will never be completed — deliver it as-is.
            for (&instance, r) in reorders.iter_mut() {
                let ready = r.flush(&mut stats);
                if !ready.is_empty() {
                    deliver(instance, ready, stats, &mut analyzer, &mut traces);
                }
            }
        });
        StreamingAnalyzer {
            cell,
            stop,
            worker: Some(worker),
        }
    }

    /// Current view of the identified subspaces.
    pub fn subspaces(&self) -> Vec<SubspaceInfo> {
        self.cell.state.lock().subspaces.clone()
    }

    /// Confirmed subspaces only.
    pub fn confirmed(&self) -> Vec<SubspaceInfo> {
        self.cell
            .state
            .lock()
            .subspaces
            .iter()
            .filter(|s| s.confirmed)
            .cloned()
            .collect()
    }

    /// Events consumed so far.
    pub fn events_consumed(&self) -> usize {
        self.cell.state.lock().events_consumed
    }

    /// Stream-repair counters (gaps skipped, duplicates dropped,
    /// out-of-order arrivals buffered).
    pub fn stream_stats(&self) -> StreamStats {
        self.cell.state.lock().stream
    }

    /// Blocks until at least `n` events have been consumed or the timeout
    /// elapses; returns whether the target was reached. Sleeps on a
    /// condvar the worker signals after every delivery — no busy-wait.
    pub fn wait_for_events(&self, n: usize, timeout: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut snap = self.cell.state.lock();
        while snap.events_consumed < n {
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            self.cell.changed.wait_for(&mut snap, deadline - now);
        }
        true
    }

    /// Stops the worker and waits for it to finish.
    pub fn shutdown(mut self) {
        self.stop_worker();
    }

    fn stop_worker(&mut self) {
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

impl Drop for StreamingAnalyzer {
    fn drop(&mut self) {
        self.stop_worker();
    }
}

/// Convenience: the union of events observable by a streaming consumer at
/// virtual time `t` (for tests reconstructing what the worker saw).
pub fn events_before(trace: &Trace, t: VirtualTime) -> usize {
    trace.events().iter().take_while(|e| e.time <= t).count()
}

/// A campaign-wide event bus, partitioned by app.
///
/// Each app in a campaign gets its own [`EventBus`] partition: its
/// sessions publish trace events only there, so per-app consumers (a
/// [`StreamingAnalyzer`], a recorder, a live dashboard) never see another
/// app's traffic and a slow consumer on one partition cannot backpressure
/// the rest of the campaign.
#[derive(Debug, Clone, Default)]
pub struct CampaignBus {
    parts: Vec<EventBus>,
}

impl CampaignBus {
    /// A bus with one partition per app.
    pub fn new(apps: usize) -> Self {
        CampaignBus {
            parts: (0..apps).map(|_| EventBus::new()).collect(),
        }
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.parts.len()
    }

    /// The partition for `app` (index into the campaign's app list).
    pub fn partition(&self, app: usize) -> &EventBus {
        &self.parts[app]
    }

    /// A sender publishing onto `app`'s partition.
    pub fn sender(&self, app: usize) -> taopt_toller::EventSender {
        self.parts[app].sender()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;
    use taopt_app_sim::{generate_app, GeneratorConfig};
    use taopt_device::DeviceId;
    use taopt_toller::{InstrumentedInstance, TransitionMonitor};
    use taopt_tools::ToolKind;
    use taopt_ui_model::VirtualDuration;

    #[test]
    fn consumes_events_from_multiple_threads() {
        let bus = EventBus::new();
        let mut cfg = AnalyzerConfig::duration_mode();
        cfg.find_space.l_min = VirtualDuration::from_secs(40);
        let analyzer = StreamingAnalyzer::spawn(&bus, cfg);

        let app = StdArc::new(generate_app(&GeneratorConfig::small("stream", 2)).unwrap());
        let mut handles = Vec::new();
        for i in 0..3u32 {
            let tx = bus.sender();
            let app = StdArc::clone(&app);
            handles.push(std::thread::spawn(move || {
                // Drive an instrumented instance and forward its trace
                // through a publishing monitor.
                let mut inst = InstrumentedInstance::boot(
                    InstanceId(i),
                    DeviceId(i),
                    app,
                    ToolKind::Monkey.build(i as u64 + 10),
                    i as u64 + 10,
                    VirtualTime::ZERO,
                );
                let mut published = TransitionMonitor::new(InstanceId(i)).with_publisher(tx);
                let deadline = VirtualTime::ZERO + VirtualDuration::from_mins(4);
                while inst.now() < deadline {
                    inst.step();
                    let last = inst.trace().last().cloned().unwrap();
                    published.record_event(last);
                }
                inst.trace().len()
            }));
        }
        let mut total = 0usize;
        for h in handles {
            total += h.join().unwrap();
        }
        // Boot events were not republished; steps were.
        let expected = total - 3;
        assert!(
            analyzer.wait_for_events(expected, std::time::Duration::from_secs(20)),
            "worker consumed {} of {expected}",
            analyzer.events_consumed()
        );
        // A clean transport needs no repairs.
        assert_eq!(analyzer.stream_stats(), StreamStats::default());
        // The analyzer worked on the stream: it saw subspace candidates.
        assert!(
            !analyzer.subspaces().is_empty(),
            "no subspaces proposed from the stream"
        );
        analyzer.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_prompt() {
        let bus = EventBus::new();
        let analyzer = StreamingAnalyzer::spawn(&bus, AnalyzerConfig::resource_mode());
        assert_eq!(analyzer.events_consumed(), 0);
        analyzer.shutdown();
        // Dropping the bus with a live analyzer also terminates cleanly.
        let a2 = StreamingAnalyzer::spawn(&EventBus::new(), AnalyzerConfig::resource_mode());
        drop(a2);
    }

    /// Builds a tiny synthetic event for sequence-layer tests.
    fn mini_event(t: u64) -> TraceEvent {
        use taopt_ui_model::abstraction::{AbstractHierarchy, AbstractNode};
        use taopt_ui_model::{ActivityId, ScreenId, WidgetClass};
        let a = StdArc::new(AbstractHierarchy::from_root(AbstractNode {
            class: WidgetClass::FrameLayout,
            resource_id: None,
            children: Vec::new(),
        }));
        TraceEvent {
            time: VirtualTime::from_secs(t),
            screen: ScreenId(0),
            activity: ActivityId(0),
            abstract_id: a.id(),
            abstraction: a,
            action: None,
            action_widget_rid: None,
        }
    }

    #[test]
    fn reorder_buffers_and_drains_in_sequence() {
        let mut r = Reorder::default();
        let mut stats = StreamStats::default();
        assert!(
            r.accept(1, mini_event(1), &mut stats).is_empty(),
            "seq 1 waits for 0"
        );
        let out = r.accept(0, mini_event(0), &mut stats);
        assert_eq!(out.len(), 2, "0 arrives, both deliver");
        assert_eq!(out[0].time, VirtualTime::from_secs(0));
        assert_eq!(out[1].time, VirtualTime::from_secs(1));
        assert_eq!(stats.reordered, 1);
        assert_eq!(stats.gaps, 0);
    }

    #[test]
    fn reorder_drops_duplicates() {
        let mut r = Reorder::default();
        let mut stats = StreamStats::default();
        assert_eq!(r.accept(0, mini_event(0), &mut stats).len(), 1);
        assert!(
            r.accept(0, mini_event(0), &mut stats).is_empty(),
            "replay of delivered seq"
        );
        assert!(r.accept(2, mini_event(2), &mut stats).is_empty());
        assert!(
            r.accept(2, mini_event(2), &mut stats).is_empty(),
            "replay of buffered seq"
        );
        assert_eq!(stats.duplicates, 2);
    }

    #[test]
    fn persistent_gap_is_skipped() {
        let mut r = Reorder::default();
        let mut stats = StreamStats::default();
        // seq 0 never arrives; buffer grows until the give-up threshold.
        let mut delivered = 0;
        for seq in 1..=GAP_BUFFER_LIMIT as u64 + 1 {
            delivered += r.accept(seq, mini_event(seq), &mut stats).len();
        }
        assert!(
            delivered >= GAP_BUFFER_LIMIT,
            "gap skipped, buffer delivered"
        );
        assert_eq!(stats.gaps, 1, "exactly seq 0 was given up");
    }

    #[test]
    fn idle_timeouts_flush_a_stalled_gap() {
        let mut r = Reorder::default();
        let mut stats = StreamStats::default();
        assert!(r.accept(3, mini_event(3), &mut stats).is_empty());
        for _ in 0..GAP_STALL_LIMIT - 1 {
            assert!(r.on_idle(&mut stats).is_empty());
        }
        let out = r.on_idle(&mut stats);
        assert_eq!(out.len(), 1, "stalled event released");
        assert_eq!(stats.gaps, 3, "seqs 0..3 given up");
    }

    #[test]
    fn lossy_bus_still_reaches_the_analyzer() {
        // Hand-feed a lossy/duplicating stream through the public API:
        // stamp every event, but drop some, duplicate some, and send one
        // out of order.
        use taopt_toller::BusEvent;
        let bus = EventBus::new();
        let analyzer = StreamingAnalyzer::spawn(&bus, AnalyzerConfig::duration_mode());
        let tx = bus.sender();
        let inst = InstanceId(0);
        let mut delayed: Option<BusEvent> = None;
        let mut expect = 0usize;
        let mut dropped = 0usize;
        let mut duplicated = 0usize;
        // 61 events so the stream does not *end* on a dropped seq (a
        // tail-gap has no successor to trigger the skip).
        for k in 0..61u64 {
            let seq = tx.stamp(inst);
            let be = BusEvent {
                instance: inst,
                seq,
                event: mini_event(k),
            };
            match k % 7 {
                3 => dropped += 1, // never sent: a permanent gap
                5 => {
                    tx.send_raw(be.clone()).unwrap();
                    tx.send_raw(be).unwrap();
                    duplicated += 1;
                    expect += 1;
                }
                6 => {
                    // Hold this one back one round (reordering).
                    delayed = Some(be);
                    expect += 1;
                }
                _ => {
                    tx.send_raw(be).unwrap();
                    if let Some(d) = delayed.take() {
                        tx.send_raw(d).unwrap();
                    }
                    expect += 1;
                }
            }
        }
        if let Some(d) = delayed.take() {
            tx.send_raw(d).unwrap();
        }
        drop(tx);
        drop(bus);
        assert!(
            analyzer.wait_for_events(expect, std::time::Duration::from_secs(10)),
            "repaired stream delivered {} of {expect}",
            analyzer.events_consumed()
        );
        let stats = analyzer.stream_stats();
        assert_eq!(stats.gaps, dropped, "every dropped seq detected as a gap");
        assert_eq!(stats.duplicates, duplicated, "every replay detected");
        assert!(stats.reordered > 0, "held-back events counted as reordered");
        analyzer.shutdown();
    }

    #[test]
    fn campaign_bus_partitions_are_isolated() {
        let bus = CampaignBus::new(3);
        assert_eq!(bus.partitions(), 3);
        let a = InstanceId(0);
        let b = InstanceId(1);
        bus.sender(0).send(a, mini_event(1)).unwrap();
        bus.sender(0).send(a, mini_event(2)).unwrap();
        bus.sender(2).send(b, mini_event(3)).unwrap();
        let p0 = bus.partition(0).drain();
        assert_eq!(p0.len(), 2, "app 0 sees only its own events");
        assert!(p0.iter().all(|e| e.instance == a));
        // Sequence numbers are per-partition (each partition is its own
        // repair domain).
        assert_eq!(p0[0].seq, 0);
        assert_eq!(p0[1].seq, 1);
        assert!(bus.partition(1).drain().is_empty());
        let p2 = bus.partition(2).drain();
        assert_eq!(p2.len(), 1);
        assert_eq!(p2[0].instance, b);
        assert_eq!(p2[0].seq, 0);
    }
}
