//! Streaming deployment of the trace analyzer.
//!
//! The lock-step [`crate::session::ParallelSession`] calls the analyzer
//! synchronously, which is ideal for reproducible experiments. A real
//! testing cloud looks different: devices produce Toller events
//! continuously and one coordinator process consumes the merged stream.
//! [`StreamingAnalyzer`] provides that deployment shape — a worker thread
//! drains a [`taopt_toller::EventBus`], rebuilds per-instance traces, runs
//! the online analysis, and publishes confirmed subspaces through a shared
//! snapshot that device loops read when applying enforcement.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::RecvTimeoutError;
use parking_lot::Mutex;

use taopt_toller::{EventBus, InstanceId};
use taopt_ui_model::{Trace, VirtualTime};

use crate::analyzer::{AnalyzerConfig, OnlineTraceAnalyzer, SubspaceInfo};

/// Shared snapshot of the analyzer's findings.
#[derive(Debug, Default)]
struct Snapshot {
    subspaces: Vec<SubspaceInfo>,
    events_consumed: usize,
}

/// A background analyzer consuming a Toller event bus.
///
/// Dropping the handle stops the worker. The worker also stops when every
/// sender side of the bus has been dropped.
#[derive(Debug)]
pub struct StreamingAnalyzer {
    snapshot: Arc<Mutex<Snapshot>>,
    stop: Arc<std::sync::atomic::AtomicBool>,
    worker: Option<JoinHandle<()>>,
}

impl StreamingAnalyzer {
    /// Spawns the worker thread on the given bus.
    pub fn spawn(bus: &EventBus, config: AnalyzerConfig) -> Self {
        let rx = bus.receiver();
        let snapshot = Arc::new(Mutex::new(Snapshot::default()));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let worker_snapshot = Arc::clone(&snapshot);
        let worker_stop = Arc::clone(&stop);
        let worker = std::thread::spawn(move || {
            let mut analyzer = OnlineTraceAnalyzer::new(config);
            let mut traces: HashMap<InstanceId, Trace> = HashMap::new();
            loop {
                if worker_stop.load(std::sync::atomic::Ordering::Relaxed) {
                    break;
                }
                match rx.recv_timeout(std::time::Duration::from_millis(20)) {
                    Ok((instance, event)) => {
                        let now = event.time;
                        let trace = traces.entry(instance).or_default();
                        trace.push(event);
                        analyzer.maybe_analyze(instance, trace, now);
                        let mut snap = worker_snapshot.lock();
                        snap.events_consumed += 1;
                        snap.subspaces = analyzer.subspaces().to_vec();
                    }
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        });
        StreamingAnalyzer { snapshot, stop, worker: Some(worker) }
    }

    /// Current view of the identified subspaces.
    pub fn subspaces(&self) -> Vec<SubspaceInfo> {
        self.snapshot.lock().subspaces.clone()
    }

    /// Confirmed subspaces only.
    pub fn confirmed(&self) -> Vec<SubspaceInfo> {
        self.snapshot.lock().subspaces.iter().filter(|s| s.confirmed).cloned().collect()
    }

    /// Events consumed so far.
    pub fn events_consumed(&self) -> usize {
        self.snapshot.lock().events_consumed
    }

    /// Blocks until at least `n` events have been consumed or the timeout
    /// elapses; returns whether the target was reached.
    pub fn wait_for_events(&self, n: usize, timeout: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while std::time::Instant::now() < deadline {
            if self.events_consumed() >= n {
                return true;
            }
            std::thread::yield_now();
        }
        self.events_consumed() >= n
    }

    /// Stops the worker and waits for it to finish.
    pub fn shutdown(mut self) {
        self.stop_worker();
    }

    fn stop_worker(&mut self) {
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

impl Drop for StreamingAnalyzer {
    fn drop(&mut self) {
        self.stop_worker();
    }
}

/// Convenience: the union of events observable by a streaming consumer at
/// virtual time `t` (for tests reconstructing what the worker saw).
pub fn events_before(trace: &Trace, t: VirtualTime) -> usize {
    trace.events().iter().take_while(|e| e.time <= t).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;
    use taopt_app_sim::{generate_app, GeneratorConfig};
    use taopt_device::DeviceId;
    use taopt_toller::{InstrumentedInstance, TransitionMonitor};
    use taopt_tools::ToolKind;
    use taopt_ui_model::VirtualDuration;

    #[test]
    fn consumes_events_from_multiple_threads() {
        let bus = EventBus::new();
        let mut cfg = AnalyzerConfig::duration_mode();
        cfg.find_space.l_min = VirtualDuration::from_secs(40);
        let analyzer = StreamingAnalyzer::spawn(&bus, cfg);

        let app = StdArc::new(generate_app(&GeneratorConfig::small("stream", 2)).unwrap());
        let mut handles = Vec::new();
        for i in 0..3u32 {
            let tx = bus.sender();
            let app = StdArc::clone(&app);
            handles.push(std::thread::spawn(move || {
                // Drive an instrumented instance and forward its trace
                // through a publishing monitor.
                let mut inst = InstrumentedInstance::boot(
                    InstanceId(i),
                    DeviceId(i),
                    app,
                    ToolKind::Monkey.build(i as u64 + 10),
                    i as u64 + 10,
                    VirtualTime::ZERO,
                );
                let mut published = TransitionMonitor::new(InstanceId(i)).with_publisher(tx);
                let deadline = VirtualTime::ZERO + VirtualDuration::from_mins(4);
                while inst.now() < deadline {
                    inst.step();
                    let last = inst.trace().last().cloned().unwrap();
                    published.record_event(last);
                }
                inst.trace().len()
            }));
        }
        let mut total = 0usize;
        for h in handles {
            total += h.join().unwrap();
        }
        // Boot events were not republished; steps were.
        let expected = total - 3;
        assert!(
            analyzer.wait_for_events(expected, std::time::Duration::from_secs(20)),
            "worker consumed {} of {expected}",
            analyzer.events_consumed()
        );
        // The analyzer worked on the stream: it saw subspace candidates.
        assert!(
            !analyzer.subspaces().is_empty(),
            "no subspaces proposed from the stream"
        );
        analyzer.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_prompt() {
        let bus = EventBus::new();
        let analyzer = StreamingAnalyzer::spawn(&bus, AnalyzerConfig::resource_mode());
        assert_eq!(analyzer.events_consumed(), 0);
        analyzer.shutdown();
        // Dropping the bus with a live analyzer also terminates cleanly.
        let a2 = StreamingAnalyzer::spawn(&EventBus::new(), AnalyzerConfig::resource_mode());
        drop(a2);
    }
}
