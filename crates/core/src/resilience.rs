//! Self-healing machinery for chaos runs.
//!
//! The fault injector (crate `taopt-chaos`) breaks three seams: devices
//! die or refuse allocation, bus events are dropped/duplicated/delayed,
//! and enforcement broadcasts fail to apply. This module holds the
//! counterparts that heal two of them (the bus seam heals inside
//! [`crate::streaming`] via sequence numbers):
//!
//! * [`EnforcementBroadcaster`] — the coordinator writes its *intended*
//!   block rules to a shadow list; the broadcaster reconciles shadow →
//!   device each round, pushing every rule change through the (possibly
//!   failing) enforcement channel and retrying idempotently until the
//!   device acknowledges it;
//! * [`ReplacementQueue`] — lost devices are re-allocated with bounded
//!   retry and exponential backoff, so a burst of allocation refusals
//!   delays recovery instead of wedging the session.
//!
//! [`BroadcastEnforcement`] packages the broadcaster + injector pair as
//! the chaotic implementation of the enforcement seam layer
//! ([`crate::campaign::Enforcement`]) that [`crate::campaign::StepLayers`]
//! plugs into the one `SessionStep` runtime.

use std::collections::BTreeMap;

use taopt_chaos::{FaultInjector, RecoveryKind};
use taopt_toller::enforce::shared_block_list;
use taopt_toller::{EntrypointRule, InstanceId, SharedBlockList};
use taopt_ui_model::{VirtualDuration, VirtualTime};

/// Bounded-retry configuration shared by the recovery paths.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Give up after this many failed attempts.
    pub max_attempts: u32,
    /// Base backoff between attempts; doubles per failure (capped at
    /// eight times the base).
    pub backoff: VirtualDuration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 6,
            backoff: VirtualDuration::from_secs(10),
        }
    }
}

impl RetryPolicy {
    /// Backoff before attempt `attempt` (0-based; exponential, capped).
    pub fn backoff_for(&self, attempt: u32) -> VirtualDuration {
        self.backoff * 1u64.checked_shl(attempt.min(3)).unwrap_or(8)
    }
}

/// One undelivered rule change.
#[derive(Debug, Clone)]
struct PendingOp {
    rule: EntrypointRule,
    /// `true` removes the rule from the device, `false` installs it.
    unblock: bool,
    /// Broadcast id (stable across retries — the fault plan keys on it).
    broadcast: u64,
    attempts: u64,
    first_tried: VirtualTime,
}

#[derive(Debug)]
struct Endpoint {
    /// What the coordinator wants blocked (it writes here directly).
    shadow: SharedBlockList,
    /// What the instance's step loop actually applies.
    actual: SharedBlockList,
    pending: Vec<PendingOp>,
}

/// Reconciles the coordinator's intended block rules onto each device
/// through a failure-prone enforcement channel.
///
/// Deliveries are idempotent ([`taopt_toller::BlockList`] deduplicates),
/// so a retry can never double-apply; a delivery counts as acknowledged
/// the moment the rule lands in the device-side list.
#[derive(Debug, Default)]
pub struct EnforcementBroadcaster {
    endpoints: BTreeMap<InstanceId, Endpoint>,
    next_broadcast: u64,
    reapplied: usize,
    /// Offset added to instance ids when keying the fault plan, so
    /// several broadcasters sharing one plan (a campaign) draw
    /// decorrelated failure streams.
    lane_base: u32,
}

impl EnforcementBroadcaster {
    /// Creates an empty broadcaster.
    pub fn new() -> Self {
        Self::default()
    }

    /// Keys the fault plan with `lane_base + instance` instead of the raw
    /// instance id.
    pub fn with_lane_base(mut self, lane_base: u32) -> Self {
        self.lane_base = lane_base;
        self
    }

    /// Boot-time catch-up for a freshly registered instance: queues the
    /// shadow → device diff (the rules the coordinator already holds for
    /// everyone) and attempts each delivery once, immediately. Failures
    /// stay pending for the next [`reconcile`](Self::reconcile). With an
    /// inert injector every attempt lands, so the device starts its first
    /// round exactly as it would under direct enforcement.
    pub fn provision(&mut self, injector: &FaultInjector, instance: InstanceId, now: VirtualTime) {
        let EnforcementBroadcaster {
            endpoints,
            next_broadcast,
            reapplied,
            lane_base,
        } = self;
        if let Some(ep) = endpoints.get_mut(&instance) {
            Self::reconcile_endpoint(
                *lane_base,
                next_broadcast,
                reapplied,
                instance,
                ep,
                injector,
                now,
            );
        }
    }

    /// Registers an instance's device-side block list and returns the
    /// shadow list to hand to the coordinator in its place.
    pub fn register(&mut self, instance: InstanceId, actual: SharedBlockList) -> SharedBlockList {
        let shadow = shared_block_list();
        self.endpoints.insert(
            instance,
            Endpoint {
                shadow: shadow.clone(),
                actual,
                pending: Vec::new(),
            },
        );
        shadow
    }

    /// Forgets a deallocated instance (undelivered ops die with it).
    pub fn unregister(&mut self, instance: InstanceId) {
        self.endpoints.remove(&instance);
    }

    /// One reconciliation round: diffs shadow vs device rules, queues the
    /// changes, and attempts every pending delivery through `injector`.
    /// Failed deliveries stay queued for the next round. Returns how many
    /// operations were applied.
    pub fn reconcile(&mut self, injector: &FaultInjector, now: VirtualTime) -> usize {
        let telemetry = taopt_telemetry::global();
        let _span = telemetry.span("broadcast").at(now).enter();
        let EnforcementBroadcaster {
            endpoints,
            next_broadcast,
            reapplied,
            lane_base,
        } = self;
        let mut applied = 0;
        for (iid, ep) in endpoints.iter_mut() {
            applied += Self::reconcile_endpoint(
                *lane_base,
                next_broadcast,
                reapplied,
                *iid,
                ep,
                injector,
                now,
            );
        }
        applied
    }

    /// Diffs one endpoint's shadow vs device rules, queues the changes,
    /// and attempts every pending delivery once through `injector`.
    /// Failed deliveries stay queued. Returns operations applied.
    fn reconcile_endpoint(
        lane_base: u32,
        next_broadcast: &mut u64,
        reapplied: &mut usize,
        iid: InstanceId,
        ep: &mut Endpoint,
        injector: &FaultInjector,
        now: VirtualTime,
    ) -> usize {
        let telemetry = taopt_telemetry::global();
        let applied_counter = telemetry.counter("enforcement_applied_total");
        let retry_counter = telemetry.counter("enforcement_retries_total");
        let mut applied = 0;
        let intended = ep.shadow.read().clone();
        let (to_block, to_unblock) = ep.actual.read().diff_to(&intended);
        for (rules, unblock) in [(to_block, false), (to_unblock, true)] {
            for rule in rules {
                let queued = ep
                    .pending
                    .iter()
                    .any(|p| p.unblock == unblock && p.rule == rule);
                if !queued {
                    ep.pending.push(PendingOp {
                        rule,
                        unblock,
                        broadcast: *next_broadcast,
                        attempts: 0,
                        first_tried: now,
                    });
                    *next_broadcast += 1;
                }
            }
        }
        ep.pending.retain_mut(|op| {
            // The coordinator may have changed its mind (e.g. a
            // re-dedication unblocking a rule queued for delivery);
            // stale ops are dropped, not delivered.
            let still_wanted = if op.unblock {
                !intended.contains(&op.rule)
            } else {
                intended.contains(&op.rule)
            };
            if !still_wanted {
                return false;
            }
            let attempt = op.attempts;
            op.attempts += 1;
            if injector.enforcement_failure(lane_base + iid.0, op.broadcast, attempt, now) {
                retry_counter.inc();
                return true; // retry next round
            }
            {
                let mut bl = ep.actual.write();
                if op.unblock {
                    bl.unblock(&op.rule);
                } else {
                    bl.block(op.rule.clone());
                }
            }
            applied += 1;
            applied_counter.inc();
            if attempt > 0 {
                injector.record_recovery(
                    op.first_tried,
                    now,
                    Some(lane_base + iid.0),
                    RecoveryKind::EnforcementReapplied,
                );
                *reapplied += 1;
            }
            false
        });
        applied
    }

    /// Deliveries still awaiting acknowledgement.
    pub fn pending_count(&self) -> usize {
        self.endpoints.values().map(|e| e.pending.len()).sum()
    }

    /// Deliveries that needed at least one retry before landing.
    pub fn reapplied(&self) -> usize {
        self.reapplied
    }

    /// Whether every device-side list matches the coordinator's intent.
    pub fn fully_synced(&self) -> bool {
        self.endpoints.values().all(|e| {
            e.pending.is_empty() && {
                let intended = e.shadow.read().rules().to_vec();
                let actual = e.actual.read().rules().to_vec();
                intended.iter().all(|r| actual.contains(r))
                    && actual.iter().all(|r| intended.contains(r))
            }
        })
    }
}

/// The chaotic implementation of the enforcement seam
/// ([`crate::campaign::Enforcement`]): an [`EnforcementBroadcaster`]
/// paired with the [`FaultInjector`] that decides which deliveries fail.
///
/// The coordinator writes intent into per-instance shadow lists; each
/// round's [`reconcile`](crate::campaign::Enforcement::reconcile) pushes
/// the shadow→device diff through the failure-prone channel with
/// idempotent retry. Boot-time registration provisions the catch-up diff
/// through the same channel with one immediate attempt, so with an inert
/// injector every delivery lands synchronously and the wiring is
/// observably identical to [`crate::campaign::DirectEnforcement`].
#[derive(Debug)]
pub struct BroadcastEnforcement {
    broadcaster: EnforcementBroadcaster,
    injector: FaultInjector,
}

impl BroadcastEnforcement {
    /// Broadcast wiring drawing failures from `injector`.
    pub fn new(injector: FaultInjector) -> Self {
        BroadcastEnforcement {
            broadcaster: EnforcementBroadcaster::new(),
            injector,
        }
    }

    /// Keys the fault plan with `lane_base + instance`.
    pub fn with_lane_base(mut self, lane_base: u32) -> Self {
        self.broadcaster = std::mem::take(&mut self.broadcaster).with_lane_base(lane_base);
        self
    }
}

impl crate::campaign::Enforcement for BroadcastEnforcement {
    fn register(&mut self, instance: InstanceId, actual: SharedBlockList) -> SharedBlockList {
        self.broadcaster.register(instance, actual)
    }

    fn provision(&mut self, instance: InstanceId, now: VirtualTime) {
        self.broadcaster.provision(&self.injector, instance, now);
    }

    fn unregister(&mut self, instance: InstanceId) {
        self.broadcaster.unregister(instance);
    }

    fn reconcile(&mut self, now: VirtualTime) -> usize {
        self.broadcaster.reconcile(&self.injector, now)
    }

    fn reapplied(&self) -> usize {
        self.broadcaster.reapplied()
    }
}

/// A replacement request for one lost device.
#[derive(Debug, Clone, Copy)]
pub struct ReplacementRequest {
    /// When the device was lost.
    pub lost_at: VirtualTime,
    /// Do not retry before this time (backoff).
    pub retry_at: VirtualTime,
    /// Failed attempts so far.
    pub attempts: u32,
}

/// Bounded-retry queue for re-allocating lost devices.
#[derive(Debug)]
pub struct ReplacementQueue {
    policy: RetryPolicy,
    pending: Vec<ReplacementRequest>,
    given_up: usize,
}

impl ReplacementQueue {
    /// Creates a queue with the given retry policy.
    pub fn new(policy: RetryPolicy) -> Self {
        ReplacementQueue {
            policy,
            pending: Vec::new(),
            given_up: 0,
        }
    }

    /// Records a device loss needing a replacement.
    pub fn device_lost(&mut self, now: VirtualTime) {
        taopt_telemetry::global()
            .counter("replacements_requested_total")
            .inc();
        self.pending.push(ReplacementRequest {
            lost_at: now,
            retry_at: now,
            attempts: 0,
        });
    }

    /// Takes the requests due at `now`. The caller attempts an allocation
    /// for each and returns failures via [`ReplacementQueue::defer`].
    pub fn due(&mut self, now: VirtualTime) -> Vec<ReplacementRequest> {
        let mut due = Vec::new();
        self.pending.retain(|r| {
            if r.retry_at <= now {
                due.push(*r);
                false
            } else {
                true
            }
        });
        due
    }

    /// Re-queues a failed request with exponential backoff, or gives up
    /// once the attempt budget is exhausted.
    pub fn defer(&mut self, mut req: ReplacementRequest, now: VirtualTime) {
        req.attempts += 1;
        if req.attempts >= self.policy.max_attempts {
            self.given_up += 1;
            taopt_telemetry::global()
                .counter("replacements_abandoned_total")
                .inc();
        } else {
            req.retry_at = now + self.policy.backoff_for(req.attempts);
            self.pending.push(req);
        }
    }

    /// Replacements still being retried.
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }

    /// Replacements abandoned after exhausting the retry budget.
    pub fn given_up(&self) -> usize {
        self.given_up
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taopt_chaos::{FaultPlan, FaultRates};
    use taopt_ui_model::AbstractScreenId;

    fn rule(n: u64) -> EntrypointRule {
        EntrypointRule::new(AbstractScreenId(n), format!("w{n}"))
    }

    #[test]
    fn broadcaster_syncs_shadow_to_device_when_channel_is_clean() {
        let inj = FaultInjector::inert(1);
        let mut b = EnforcementBroadcaster::new();
        let actual = shared_block_list();
        let shadow = b.register(InstanceId(0), actual.clone());
        shadow.write().block(rule(1));
        shadow.write().block(rule(2));
        assert!(!b.fully_synced());
        let applied = b.reconcile(&inj, VirtualTime::ZERO);
        assert_eq!(applied, 2);
        assert_eq!(actual.read().rules().len(), 2);
        assert!(b.fully_synced());
        // Unblocking propagates too.
        shadow.write().unblock(&rule(1));
        b.reconcile(&inj, VirtualTime::from_secs(1));
        assert_eq!(actual.read().rules().len(), 1);
        assert!(b.fully_synced());
    }

    #[test]
    fn failed_broadcasts_retry_until_acknowledged() {
        // Every first attempt fails; retries eventually get through
        // because the plan keys on (broadcast, attempt).
        let mut rates = FaultRates::none();
        rates.enforcement_failure = 0.9;
        let inj = FaultInjector::new(FaultPlan::new(7, rates));
        let mut b = EnforcementBroadcaster::new();
        let actual = shared_block_list();
        let shadow = b.register(InstanceId(3), actual.clone());
        for n in 0..6 {
            shadow.write().block(rule(n));
        }
        let mut now = VirtualTime::ZERO;
        for _ in 0..200 {
            now += VirtualDuration::from_secs(10);
            b.reconcile(&inj, now);
            if b.fully_synced() {
                break;
            }
        }
        assert!(b.fully_synced(), "90% failure rate must still converge");
        assert_eq!(actual.read().rules().len(), 6);
        assert!(b.reapplied() > 0, "some deliveries needed retries");
        let stats = inj.stats();
        assert!(stats.total_recovered() >= b.reapplied());
    }

    #[test]
    fn stale_ops_are_dropped_not_delivered() {
        let mut rates = FaultRates::none();
        rates.enforcement_failure = 1.0; // nothing ever applies
        let inj = FaultInjector::new(FaultPlan::new(2, rates));
        let mut b = EnforcementBroadcaster::new();
        let actual = shared_block_list();
        let shadow = b.register(InstanceId(0), actual.clone());
        shadow.write().block(rule(5));
        b.reconcile(&inj, VirtualTime::ZERO);
        assert_eq!(b.pending_count(), 1);
        // Coordinator retracts the rule before it ever landed.
        shadow.write().unblock(&rule(5));
        b.reconcile(&inj, VirtualTime::from_secs(1));
        assert_eq!(b.pending_count(), 0, "retracted rule is not retried");
        assert!(actual.read().is_empty());
    }

    #[test]
    fn replacement_queue_backs_off_and_gives_up() {
        let policy = RetryPolicy {
            max_attempts: 3,
            backoff: VirtualDuration::from_secs(10),
        };
        let mut q = ReplacementQueue::new(policy);
        let t0 = VirtualTime::from_secs(100);
        q.device_lost(t0);
        // Due immediately.
        let due = q.due(t0);
        assert_eq!(due.len(), 1);
        assert_eq!(q.outstanding(), 0);
        // Refused: backs off 20 s (attempt 1).
        q.defer(due[0], t0);
        assert_eq!(q.outstanding(), 1);
        assert!(
            q.due(t0 + VirtualDuration::from_secs(10)).is_empty(),
            "still backing off"
        );
        let due = q.due(t0 + VirtualDuration::from_secs(20));
        assert_eq!(due.len(), 1);
        // Refused twice more: attempt budget (3) exhausted.
        q.defer(due[0], t0 + VirtualDuration::from_secs(20));
        let due = q.due(t0 + VirtualDuration::from_secs(100));
        assert_eq!(due.len(), 1);
        q.defer(due[0], t0 + VirtualDuration::from_secs(100));
        assert_eq!(q.outstanding(), 0);
        assert_eq!(q.given_up(), 1);
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = RetryPolicy {
            max_attempts: 10,
            backoff: VirtualDuration::from_secs(10),
        };
        assert_eq!(p.backoff_for(0), VirtualDuration::from_secs(10));
        assert_eq!(p.backoff_for(1), VirtualDuration::from_secs(20));
        assert_eq!(p.backoff_for(2), VirtualDuration::from_secs(40));
        assert_eq!(p.backoff_for(3), VirtualDuration::from_secs(80));
        assert_eq!(
            p.backoff_for(9),
            VirtualDuration::from_secs(80),
            "capped at 8×"
        );
    }
}
