//! End-to-end parallel testing sessions (§5.1, §6.1).
//!
//! A [`ParallelSession`] wires the whole stack together — device farm,
//! emulators, black-box tools, the Toller shim and the TaOPT coordinator —
//! and advances all instances in lock-step virtual-time rounds. Four run
//! modes cover the paper's settings:
//!
//! * [`RunMode::Baseline`] — uncoordinated parallelism: `d_max` instances
//!   with different seeds, no interference (the §3.1/§6.1 baseline);
//! * [`RunMode::TaoptDuration`] — TaOPT duration-constrained: `d_max`
//!   concurrent instances maintained for `l_p`, stalled instances replaced
//!   immediately;
//! * [`RunMode::TaoptResource`] — TaOPT resource-constrained: starts with
//!   one instance, grows on subspace discovery, bounded by a machine-time
//!   budget;
//! * [`RunMode::ActivityPartition`] — the ParaAim-style baseline of §3.3:
//!   activities are statically assigned round-robin; widgets leading to
//!   foreign activities are blocked, and stalled instances jump to an
//!   owned activity by Intent.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use taopt_app_sim::{App, CrashSignature, MethodId};
use taopt_device::{DeviceFarm, DeviceId};
use taopt_toller::{EntrypointRule, InstanceId, InstrumentedInstance};
use taopt_tools::ToolKind;
use taopt_ui_model::abstraction::abstract_hierarchy;
use taopt_ui_model::{ActivityId, ScreenId, Trace, VirtualDuration, VirtualTime};

use crate::analyzer::{AnalyzerConfig, SubspaceInfo};
use crate::coordinator::{CoordinatorEvent, TestCoordinator};
use crate::metrics::curves::CurvePoint;

/// The four parallel-run settings of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RunMode {
    /// Uncoordinated parallel testing (different seeds only).
    Baseline,
    /// TaOPT, duration-constrained mode.
    TaoptDuration,
    /// TaOPT, resource-constrained mode.
    TaoptResource,
    /// ParaAim-style activity-granularity partitioning (§3.3).
    ActivityPartition,
    /// PATS-style master–slave dispatch (related work, §9): the master
    /// explores freely; each newly discovered screen is dispatched to a
    /// slave, which jumps there by Intent and explores locally. The paper
    /// notes this "is highly susceptible to overlapping explorations,
    /// mainly due to many UI transitions being bidirectional".
    PatsMasterSlave,
}

impl RunMode {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            RunMode::Baseline => "Baseline",
            RunMode::TaoptDuration => "TaOPT(Duration)",
            RunMode::TaoptResource => "TaOPT(Resource)",
            RunMode::ActivityPartition => "ActivityPartition",
            RunMode::PatsMasterSlave => "PATS(MasterSlave)",
        }
    }

    /// Whether this mode runs the TaOPT coordinator.
    pub fn uses_taopt(&self) -> bool {
        matches!(self, RunMode::TaoptDuration | RunMode::TaoptResource)
    }
}

/// Configuration of one parallel session.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// The black-box tool under coordination.
    pub tool: ToolKind,
    /// The run mode.
    pub mode: RunMode,
    /// `d_max`: maximum concurrent instances (the paper uses 5).
    pub instances: usize,
    /// `l_p`: the wall-clock budget of duration-bounded modes (1 h in the
    /// paper).
    pub duration: VirtualDuration,
    /// Machine-time budget of the resource-constrained mode; defaults to
    /// `instances × duration` (= 5 machine hours in the paper).
    pub machine_budget: Option<VirtualDuration>,
    /// Base random seed; instance `i` uses `seed + i`-derived streams.
    pub seed: u64,
    /// Lock-step round length.
    pub tick: VirtualDuration,
    /// Stall timeout before deallocation (1 min in the paper).
    pub stall_timeout: VirtualDuration,
    /// Analyzer parameters; defaults depend on the mode.
    pub analyzer: AnalyzerConfig,
    /// Emulator timing and flakiness knobs for every device.
    pub emulator: taopt_device::EmulatorConfig,
}

impl SessionConfig {
    /// The paper's defaults for the given tool and mode
    /// (`d_max = 5`, `l_p = 1 h`, budget `5` machine-hours).
    pub fn new(tool: ToolKind, mode: RunMode) -> Self {
        let analyzer = match mode {
            RunMode::TaoptResource => AnalyzerConfig::resource_mode(),
            _ => AnalyzerConfig::duration_mode(),
        };
        SessionConfig {
            tool,
            mode,
            instances: 5,
            duration: VirtualDuration::from_hours(1),
            machine_budget: None,
            seed: 0,
            tick: VirtualDuration::from_secs(10),
            stall_timeout: VirtualDuration::from_mins(3),
            analyzer,
            emulator: taopt_device::EmulatorConfig::default(),
        }
    }

    /// The effective machine budget.
    pub fn effective_budget(&self) -> VirtualDuration {
        self.machine_budget
            .unwrap_or(self.duration * self.instances as u64)
    }
}

/// Per-instance results of a session.
#[derive(Debug, Clone)]
pub struct InstanceResult {
    /// Instance id.
    pub instance: InstanceId,
    /// Allocation time.
    pub allocated_at: VirtualTime,
    /// Deallocation time.
    pub deallocated_at: VirtualTime,
    /// Methods covered by this instance.
    pub covered: BTreeSet<MethodId>,
    /// Time-stamped cover events (for overlap-over-time analyses).
    pub cover_events: Vec<(VirtualTime, MethodId)>,
    /// Unique crashes triggered on this instance.
    pub crashes: BTreeSet<CrashSignature>,
    /// Every crash occurrence (time, signature) on this instance.
    pub crash_occurrences: Vec<(VirtualTime, CrashSignature)>,
    /// The device the instance ran on.
    pub device: taopt_device::DeviceId,
    /// The instance's UI transition trace.
    pub trace: Trace,
}

impl InstanceResult {
    /// Covered methods at (or before) a given time.
    pub fn covered_at(&self, time: VirtualTime) -> BTreeSet<MethodId> {
        self.cover_events
            .iter()
            .take_while(|(t, _)| *t <= time)
            .map(|(_, m)| *m)
            .collect()
    }
}

/// The complete outcome of one parallel session.
#[derive(Debug, Clone)]
pub struct SessionResult {
    /// The tool used.
    pub tool: ToolKind,
    /// The run mode.
    pub mode: RunMode,
    /// Per-instance results (in allocation order).
    pub instances: Vec<InstanceResult>,
    /// Cumulative union coverage over global time.
    pub union_curve: Vec<CurvePoint>,
    /// Total machine time consumed.
    pub machine_time: VirtualDuration,
    /// Wall-clock length of the session.
    pub wall_clock: VirtualDuration,
    /// Subspaces identified (TaOPT modes; empty otherwise).
    pub subspaces: Vec<SubspaceInfo>,
    /// Coordinator decision log (TaOPT modes).
    pub coordinator_events: Vec<CoordinatorEvent>,
    /// Concurrency over time: (round boundary, active instances).
    pub concurrency_timeline: Vec<(VirtualTime, usize)>,
}

impl SessionResult {
    /// Union method coverage across instances.
    pub fn union_coverage(&self) -> usize {
        self.union_curve.last().map(|p| p.covered).unwrap_or(0)
    }

    /// Union of unique crashes across instances.
    pub fn unique_crashes(&self) -> BTreeSet<CrashSignature> {
        self.instances
            .iter()
            .flat_map(|i| i.crashes.iter().copied())
            .collect()
    }

    /// Union covered-method set.
    pub fn union_covered(&self) -> BTreeSet<MethodId> {
        self.instances
            .iter()
            .flat_map(|i| i.covered.iter().copied())
            .collect()
    }

    /// Per-instance coverage sets (for AJS).
    pub fn coverage_sets(&self) -> Vec<BTreeSet<MethodId>> {
        self.instances.iter().map(|i| i.covered.clone()).collect()
    }

    /// Traces of all instances.
    pub fn traces(&self) -> Vec<&Trace> {
        self.instances.iter().map(|i| &i.trace).collect()
    }

    /// Aggregates all crash occurrences into a ranked triage report.
    pub fn triage_report(&self) -> taopt_device::TriageReport {
        use taopt_device::CrashCollector;
        let collectors: Vec<(taopt_device::DeviceId, CrashCollector)> = self
            .instances
            .iter()
            .map(|i| {
                let mut c = CrashCollector::new();
                for (t, sig) in &i.crash_occurrences {
                    c.record(*t, *sig);
                }
                (i.device, c)
            })
            .collect();
        taopt_device::TriageReport::build(collectors.iter().map(|(d, c)| (*d, c)))
    }

    /// Peak concurrency reached during the session.
    pub fn peak_concurrency(&self) -> usize {
        self.concurrency_timeline
            .iter()
            .map(|(_, n)| *n)
            .max()
            .unwrap_or(0)
    }

    /// Mean concurrency over the session's rounds.
    pub fn mean_concurrency(&self) -> f64 {
        if self.concurrency_timeline.is_empty() {
            return 0.0;
        }
        self.concurrency_timeline
            .iter()
            .map(|(_, n)| *n)
            .sum::<usize>() as f64
            / self.concurrency_timeline.len() as f64
    }
}

/// Internal: one live instance plus scheduling bookkeeping.
struct ActiveInstance {
    inst: InstrumentedInstance,
    device: DeviceId,
    allocated_at: VirtualTime,
    last_new_screen: VirtualTime,
    cover_events: Vec<(VirtualTime, MethodId)>,
    /// Activity-partition mode: screens this instance owns.
    owned_screens: Vec<ScreenId>,
    jump_cursor: usize,
}

/// Runs parallel testing sessions.
#[derive(Debug)]
pub struct ParallelSession;

impl ParallelSession {
    /// Runs a session to completion and returns its results.
    ///
    /// The run is fully deterministic given `config.seed`.
    pub fn run(app: Arc<App>, config: &SessionConfig) -> SessionResult {
        let telemetry = taopt_telemetry::global();
        telemetry.counter("sessions_started_total").inc();
        let round_counter = telemetry.counter("session_rounds_total");
        let cover_counter = telemetry.counter("cover_events_total");
        let coordinator_errors = telemetry.counter("coordinator_errors_total");
        let mut farm = DeviceFarm::new(config.instances);
        let mut coordinator =
            TestCoordinator::new(config.analyzer.clone()).with_stall_timeout(config.stall_timeout);
        let mut active: Vec<ActiveInstance> = Vec::new();
        let mut finished: Vec<InstanceResult> = Vec::new();
        let mut next_instance = 0u32;
        let mut union: BTreeSet<MethodId> = BTreeSet::new();
        let mut union_curve: Vec<CurvePoint> = Vec::new();
        // Methods covered during instance boot (startup + auto-login),
        // merged into the union at the next round boundary.
        let mut pending_boot: Vec<(VirtualTime, MethodId)> = Vec::new();
        let mut concurrency_timeline: Vec<(VirtualTime, usize)> = Vec::new();

        // Activity-partition precomputation: owned activities per slot and
        // the static block rules derived from the app structure.
        let activity_plan = if config.mode == RunMode::ActivityPartition {
            Some(ActivityPlan::build(&app, config.instances))
        } else {
            None
        };

        // PATS: screens the master discovered, pending dispatch to slaves.
        let mut pats_queue: Vec<ScreenId> = Vec::new();
        let mut pats_dispatched: BTreeSet<ScreenId> = BTreeSet::new();
        let initial = match config.mode {
            RunMode::TaoptResource => 1,
            _ => config.instances,
        };
        let budget = config.effective_budget();
        let mut now = VirtualTime::ZERO;

        // Allocation helper is inlined as a closure-free fn to keep borrow
        // checking simple.
        for _ in 0..initial {
            allocate(
                &app,
                config,
                &mut farm,
                &mut coordinator,
                &mut active,
                &mut next_instance,
                activity_plan.as_ref(),
                now,
                &mut pending_boot,
            );
        }

        loop {
            now += config.tick;
            round_counter.inc();
            concurrency_timeline.push((now, active.len()));
            let deadline = if config.mode == RunMode::TaoptResource {
                now
            } else {
                // Never run past the wall-clock budget.
                now.min(VirtualTime::ZERO + config.duration)
            };

            // Step every active instance up to the round boundary, pooling
            // cover events so the union curve stays time-ordered across
            // instances within the round.
            let mut round_events: Vec<(VirtualTime, MethodId)> = std::mem::take(&mut pending_boot);
            for a in active.iter_mut() {
                let target = now.min(deadline);
                let reports = a.inst.run_until(target);
                for r in reports {
                    if !r.newly_covered.is_empty() {
                        // Coverage growth counts as progress: the screen
                        // abstraction of the simulator is coarser than a
                        // real device's, so "no new abstract screen" alone
                        // would misfire while the tool still exercises new
                        // behaviour.
                        a.last_new_screen = r.time;
                    }
                    for m in &r.newly_covered {
                        a.cover_events.push((r.time, *m));
                        round_events.push((r.time, *m));
                    }
                    if r.new_screen {
                        a.last_new_screen = r.time;
                    }
                }
            }
            round_events.sort_by_key(|(t, _)| *t);
            cover_counter.add(round_events.len() as u64);
            let consumed = farm.consumed_as_of(now);
            for (t, m) in round_events {
                if union.insert(m) {
                    union_curve.push(CurvePoint {
                        time: t,
                        covered: union.len(),
                        machine_time: consumed,
                    });
                }
            }

            // TaOPT analysis + dedication.
            let mut newly_confirmed = 0usize;
            if config.mode.uses_taopt() {
                let _span = telemetry.span("analysis").at(now).enter();
                for a in active.iter() {
                    match coordinator.process_trace(a.inst.id(), a.inst.trace(), now) {
                        Ok(confirmed) => newly_confirmed += confirmed.len(),
                        // A dedication failure is an internal-invariant
                        // breach; the session degrades to uncoordinated
                        // exploration for this round instead of panicking.
                        Err(_) => coordinator_errors.inc(),
                    }
                }
            }

            // PATS dispatch: the master (instance 0) feeds newly seen
            // screens to the queue; idle slaves jump to the next one.
            if config.mode == RunMode::PatsMasterSlave {
                if let Some(master) = active.iter().find(|a| a.inst.id().0 == 0) {
                    for e in master.inst.trace().events() {
                        if pats_dispatched.insert(e.screen) {
                            pats_queue.push(e.screen);
                        }
                    }
                }
                for a in active.iter_mut() {
                    if a.inst.id().0 == 0 {
                        continue;
                    }
                    // A slave with no fresh screens for half the stall
                    // timeout picks up the next dispatched target.
                    if now.since(a.last_new_screen) >= config.stall_timeout / 2 {
                        if let Some(target) = pats_queue.pop() {
                            a.inst.jump_to(target);
                            a.last_new_screen = now;
                        }
                    }
                }
            }

            // Stall handling.
            match config.mode {
                RunMode::Baseline | RunMode::PatsMasterSlave => {}
                RunMode::ActivityPartition => {
                    // Stalled instances jump to the next owned screen.
                    for a in active.iter_mut() {
                        if now.since(a.last_new_screen) >= config.stall_timeout
                            && !a.owned_screens.is_empty()
                        {
                            let s = a.owned_screens[a.jump_cursor % a.owned_screens.len()];
                            a.jump_cursor += 1;
                            a.inst.jump_to(s);
                            a.last_new_screen = now;
                        }
                    }
                }
                RunMode::TaoptDuration | RunMode::TaoptResource => {
                    let mut i = 0;
                    while i < active.len() {
                        if coordinator.should_deallocate(active[i].last_new_screen, now) {
                            let a = active.swap_remove(i);
                            deallocate(a, &mut farm, &mut coordinator, &mut finished, now);
                        } else {
                            i += 1;
                        }
                    }
                }
            }

            // Allocation policy + termination.
            match config.mode {
                RunMode::Baseline | RunMode::ActivityPartition | RunMode::PatsMasterSlave => {
                    if now >= VirtualTime::ZERO + config.duration {
                        break;
                    }
                }
                RunMode::TaoptDuration => {
                    if now >= VirtualTime::ZERO + config.duration {
                        break;
                    }
                    // Maintain exactly d_max concurrent instances.
                    while active.len() < config.instances {
                        allocate(
                            &app,
                            config,
                            &mut farm,
                            &mut coordinator,
                            &mut active,
                            &mut next_instance,
                            None,
                            now,
                            &mut pending_boot,
                        );
                    }
                }
                RunMode::TaoptResource => {
                    if farm.consumed_as_of(now) >= budget {
                        break;
                    }
                    // Grow on discovery; never exceed d_max.
                    for _ in 0..newly_confirmed {
                        if active.len() < config.instances {
                            allocate(
                                &app,
                                config,
                                &mut farm,
                                &mut coordinator,
                                &mut active,
                                &mut next_instance,
                                None,
                                now,
                                &mut pending_boot,
                            );
                        }
                    }
                    // Keep at least one explorer alive while budget remains.
                    if active.is_empty() {
                        allocate(
                            &app,
                            config,
                            &mut farm,
                            &mut coordinator,
                            &mut active,
                            &mut next_instance,
                            None,
                            now,
                            &mut pending_boot,
                        );
                    }
                }
            }
        }

        // Drain remaining instances.
        let end = now;
        for a in active.drain(..) {
            deallocate(a, &mut farm, &mut coordinator, &mut finished, end);
        }
        finished.sort_by_key(|r| r.instance);

        let subspaces = coordinator.analyzer().subspaces().to_vec();
        SessionResult {
            tool: config.tool,
            mode: config.mode,
            instances: finished,
            union_curve,
            machine_time: farm.consumed(),
            wall_clock: end.since(VirtualTime::ZERO),
            subspaces,
            coordinator_events: coordinator.events().to_vec(),
            concurrency_timeline,
        }
    }
}

/// Activity-partition plan: round-robin activity ownership plus static
/// block rules.
struct ActivityPlan {
    /// Per-slot owned activities.
    owned: Vec<BTreeSet<ActivityId>>,
    /// Per-slot blocked entry rules (widgets leading to foreign
    /// activities).
    rules: Vec<Vec<EntrypointRule>>,
    /// Per-slot owned screens (jump targets).
    screens: Vec<Vec<ScreenId>>,
}

impl ActivityPlan {
    fn build(app: &App, slots: usize) -> Self {
        let activities: Vec<ActivityId> = app.activities().into_iter().collect();
        let mut owned = vec![BTreeSet::new(); slots];
        for (i, a) in activities.iter().enumerate() {
            owned[i % slots].insert(*a);
        }
        // Abstract ids of every screen (rendered once with zero visits).
        let abstract_of: BTreeMap<ScreenId, _> = app
            .screens()
            .map(|s| (s.id, abstract_hierarchy(&app.render_screen(s.id, 0)).id()))
            .collect();
        let mut rules = vec![Vec::new(); slots];
        let mut screens = vec![Vec::new(); slots];
        for (slot, owned_set) in owned.iter().enumerate() {
            for s in app.screens() {
                if owned_set.contains(&s.activity) {
                    screens[slot].push(s.id);
                }
                for a in &s.actions {
                    let leaves = a.targets.iter().any(|t| {
                        let target_activity = app.screen(t.screen).map(|sp| sp.activity);
                        target_activity
                            .map(|ta| !owned_set.contains(&ta))
                            .unwrap_or(false)
                    });
                    if leaves {
                        rules[slot].push(EntrypointRule::new(abstract_of[&s.id], &a.widget_rid));
                    }
                }
            }
        }
        ActivityPlan {
            owned,
            rules,
            screens,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn allocate(
    app: &Arc<App>,
    config: &SessionConfig,
    farm: &mut DeviceFarm,
    coordinator: &mut TestCoordinator,
    active: &mut Vec<ActiveInstance>,
    next_instance: &mut u32,
    plan: Option<&ActivityPlan>,
    now: VirtualTime,
    pending_boot: &mut Vec<(VirtualTime, MethodId)>,
) {
    let Ok(device) = farm.allocate(now) else {
        return;
    };
    taopt_telemetry::global()
        .counter("instances_allocated_total")
        .inc();
    let iid = InstanceId(*next_instance);
    *next_instance += 1;
    // Derive decorrelated per-instance seeds.
    let seed = config
        .seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(
            (iid.0 as u64)
                .wrapping_mul(0x2545_f491_4f6c_dd1d)
                .wrapping_add(1),
        );
    let tool = config.tool.build(seed);
    let inst = InstrumentedInstance::boot_with(
        iid,
        device,
        Arc::clone(app),
        tool,
        seed ^ 0xabcd,
        now,
        config.emulator,
    );
    let mut owned_screens = Vec::new();
    if let Some(plan) = plan {
        let slot = (iid.0 as usize) % plan.owned.len().max(1);
        let bl = inst.blocklist();
        let mut bl = bl.write();
        for r in &plan.rules[slot] {
            bl.block(r.clone());
        }
        owned_screens = plan.screens[slot].clone();
    }
    if config.mode.uses_taopt() {
        coordinator.register_instance(iid, inst.blocklist());
    }
    // Startup (and auto-login) coverage happens at boot, before the first
    // tool step; account it like any other cover event.
    let boot_covered: Vec<(VirtualTime, MethodId)> = inst
        .emulator()
        .coverage()
        .covered()
        .iter()
        .map(|m| (now, *m))
        .collect();
    pending_boot.extend(boot_covered.iter().copied());
    active.push(ActiveInstance {
        inst,
        device,
        allocated_at: now,
        last_new_screen: now,
        cover_events: boot_covered,
        owned_screens,
        jump_cursor: 0,
    });
}

fn deallocate(
    a: ActiveInstance,
    farm: &mut DeviceFarm,
    coordinator: &mut TestCoordinator,
    finished: &mut Vec<InstanceResult>,
    now: VirtualTime,
) {
    let _ = farm.deallocate(a.device, now);
    taopt_telemetry::global()
        .counter("instances_deallocated_total")
        .inc();
    let visited: std::collections::BTreeSet<_> = a
        .inst
        .trace()
        .events()
        .iter()
        .map(|e| e.abstract_id)
        .collect();
    coordinator.unregister_instance_with_trace(a.inst.id(), &visited);
    let em = a.inst.emulator();
    finished.push(InstanceResult {
        instance: a.inst.id(),
        allocated_at: a.allocated_at,
        deallocated_at: now,
        covered: em.coverage().covered().clone(),
        cover_events: a.cover_events,
        crashes: em.crashes().unique_crashes().clone(),
        crash_occurrences: em.crashes().occurrences().to_vec(),
        device: a.device,
        trace: a.inst.trace().clone(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use taopt_app_sim::{generate_app, GeneratorConfig};

    fn small_app(seed: u64) -> Arc<App> {
        Arc::new(generate_app(&GeneratorConfig::small("sess", seed)).unwrap())
    }

    fn quick(tool: ToolKind, mode: RunMode) -> SessionConfig {
        let mut c = SessionConfig::new(tool, mode);
        c.instances = 3;
        c.duration = VirtualDuration::from_mins(8);
        c.tick = VirtualDuration::from_secs(10);
        c.analyzer.find_space.l_min = VirtualDuration::from_secs(45);
        c.analyzer.analysis_interval = VirtualDuration::from_secs(20);
        c
    }

    #[test]
    fn baseline_runs_fixed_instances_for_the_duration() {
        let r = ParallelSession::run(small_app(1), &quick(ToolKind::Monkey, RunMode::Baseline));
        assert_eq!(r.instances.len(), 3);
        assert!(r.union_coverage() > 0);
        assert!(r.subspaces.is_empty());
        // Machine time ≈ 3 × 8 min.
        let expect = VirtualDuration::from_mins(24);
        let diff = r.machine_time.as_secs().abs_diff(expect.as_secs());
        assert!(diff < 120, "machine time {} vs {}", r.machine_time, expect);
    }

    #[test]
    fn taopt_duration_finds_and_dedicates_subspaces() {
        let r = ParallelSession::run(small_app(2), &quick(ToolKind::Ape, RunMode::TaoptDuration));
        assert!(
            r.subspaces.iter().any(|s| s.confirmed),
            "expected confirmed subspaces, got {:?}",
            r.subspaces.len()
        );
        assert!(
            r.coordinator_events
                .iter()
                .any(|e| matches!(e, CoordinatorEvent::SubspaceDedicated { .. })),
            "dedication events expected"
        );
    }

    #[test]
    fn taopt_resource_respects_budget() {
        let mut cfg = quick(ToolKind::Monkey, RunMode::TaoptResource);
        cfg.machine_budget = Some(VirtualDuration::from_mins(15));
        let r = ParallelSession::run(small_app(3), &cfg);
        // Budget may be exceeded by at most one tick × instances.
        assert!(
            r.machine_time.as_secs() <= 15 * 60 + 3 * 10 + 60,
            "machine time {} exceeds budget",
            r.machine_time
        );
        assert!(r.union_coverage() > 0);
    }

    #[test]
    fn activity_partition_blocks_cross_activity_widgets() {
        let r = ParallelSession::run(
            small_app(4),
            &quick(ToolKind::WcTester, RunMode::ActivityPartition),
        );
        assert_eq!(r.instances.len(), 3);
        assert!(r.union_coverage() > 0);
    }

    #[test]
    fn sessions_are_deterministic() {
        let cfg = quick(ToolKind::Monkey, RunMode::TaoptDuration);
        let a = ParallelSession::run(small_app(5), &cfg);
        let b = ParallelSession::run(small_app(5), &cfg);
        assert_eq!(a.union_coverage(), b.union_coverage());
        assert_eq!(a.unique_crashes(), b.unique_crashes());
        assert_eq!(a.machine_time, b.machine_time);
        assert_eq!(a.subspaces.len(), b.subspaces.len());
    }

    #[test]
    fn union_curve_is_monotone() {
        let r = ParallelSession::run(small_app(6), &quick(ToolKind::Ape, RunMode::Baseline));
        assert!(r
            .union_curve
            .windows(2)
            .all(|w| w[0].covered < w[1].covered && w[0].time <= w[1].time));
    }

    #[test]
    fn flaky_devices_still_complete_sessions() {
        let mut cfg = quick(ToolKind::Ape, RunMode::TaoptDuration);
        cfg.emulator.event_loss = 0.25;
        let flaky = ParallelSession::run(small_app(12), &cfg);
        assert!(flaky.union_coverage() > 0);
        let mut clean_cfg = quick(ToolKind::Ape, RunMode::TaoptDuration);
        clean_cfg.emulator.event_loss = 0.0;
        let clean = ParallelSession::run(small_app(12), &clean_cfg);
        assert!(
            flaky.union_coverage() <= clean.union_coverage(),
            "losing events cannot increase coverage: {} vs {}",
            flaky.union_coverage(),
            clean.union_coverage()
        );
    }

    #[test]
    fn triage_report_matches_unique_crashes() {
        // An app with shallow-armed crash points so a short run hits some.
        let mut gcfg = GeneratorConfig::small("triage", 11);
        gcfg.crash_points = 8;
        gcfg.crash_probability = 0.2;
        gcfg.crash_depth_fraction = 0.2;
        let app = Arc::new(taopt_app_sim::generate_app(&gcfg).unwrap());
        let mut cfg = quick(ToolKind::Monkey, RunMode::Baseline);
        cfg.duration = VirtualDuration::from_mins(15);
        let r = ParallelSession::run(app, &cfg);
        let report = r.triage_report();
        assert_eq!(report.unique_count(), r.unique_crashes().len());
        assert!(report.occurrence_count() >= report.unique_count());
        if report.unique_count() > 0 {
            let text = report.render("triage");
            assert!(text.contains("unique crash"));
        }
    }

    #[test]
    fn concurrency_timeline_is_bounded_by_dmax() {
        let cfg = quick(ToolKind::Monkey, RunMode::TaoptResource);
        let r = ParallelSession::run(small_app(9), &cfg);
        assert!(!r.concurrency_timeline.is_empty());
        assert!(r.peak_concurrency() <= cfg.instances);
        assert!(r.mean_concurrency() > 0.0);
        // Resource mode starts with a single instance.
        assert_eq!(r.concurrency_timeline[0].1, 1);
    }

    #[test]
    fn never_exceeds_dmax() {
        // Indirect check: machine time can never exceed d_max × wall clock.
        let cfg = quick(ToolKind::Monkey, RunMode::TaoptDuration);
        let r = ParallelSession::run(small_app(7), &cfg);
        let cap = r.wall_clock * cfg.instances as u64;
        assert!(
            r.machine_time.as_millis() <= cap.as_millis() + 60_000,
            "machine {} vs cap {}",
            r.machine_time,
            cap
        );
    }
}

#[cfg(test)]
mod pats_tests {
    use super::*;
    use taopt_app_sim::{generate_app, GeneratorConfig};

    #[test]
    fn pats_mode_runs_and_dispatches() {
        let app = Arc::new(generate_app(&GeneratorConfig::small("pats", 4)).unwrap());
        let mut cfg = SessionConfig::new(ToolKind::Monkey, RunMode::PatsMasterSlave);
        cfg.instances = 3;
        cfg.duration = VirtualDuration::from_mins(8);
        cfg.stall_timeout = VirtualDuration::from_secs(60);
        let r = ParallelSession::run(app, &cfg);
        assert_eq!(r.instances.len(), 3);
        assert!(r.union_coverage() > 0);
        // Slaves received Intent jumps: their traces contain action-less
        // observations beyond the initial one.
        let slave_jumps: usize = r
            .instances
            .iter()
            .filter(|i| i.instance.0 != 0)
            .map(|i| {
                i.trace
                    .events()
                    .iter()
                    .filter(|e| e.action.is_none())
                    .count()
            })
            .sum();
        assert!(slave_jumps > 2, "expected dispatches, saw {slave_jumps}");
    }

    #[test]
    fn pats_is_deterministic() {
        let app = Arc::new(generate_app(&GeneratorConfig::small("pats", 5)).unwrap());
        let mut cfg = SessionConfig::new(ToolKind::Ape, RunMode::PatsMasterSlave);
        cfg.instances = 3;
        cfg.duration = VirtualDuration::from_mins(6);
        let a = ParallelSession::run(Arc::clone(&app), &cfg);
        let b = ParallelSession::run(app, &cfg);
        assert_eq!(a.union_coverage(), b.union_coverage());
    }
}
