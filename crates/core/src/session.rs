//! End-to-end parallel testing sessions (§5.1, §6.1).
//!
//! A [`ParallelSession`] wires the whole stack together — device farm,
//! emulators, black-box tools, the Toller shim and the TaOPT coordinator —
//! and advances all instances in lock-step virtual-time rounds. Four run
//! modes cover the paper's settings:
//!
//! * [`RunMode::Baseline`] — uncoordinated parallelism: `d_max` instances
//!   with different seeds, no interference (the §3.1/§6.1 baseline);
//! * [`RunMode::TaoptDuration`] — TaOPT duration-constrained: `d_max`
//!   concurrent instances maintained for `l_p`, stalled instances replaced
//!   immediately;
//! * [`RunMode::TaoptResource`] — TaOPT resource-constrained: starts with
//!   one instance, grows on subspace discovery, bounded by a machine-time
//!   budget;
//! * [`RunMode::ActivityPartition`] — the ParaAim-style baseline of §3.3:
//!   activities are statically assigned round-robin; widgets leading to
//!   foreign activities are blocked, and stalled instances jump to an
//!   owned activity by Intent.

use std::collections::BTreeSet;
use std::sync::Arc;

use taopt_app_sim::{App, CrashSignature, MethodId};
use taopt_device::{DevicePool, PlainPool, PoolDecision};
use taopt_toller::InstanceId;
use taopt_tools::ToolKind;
use taopt_ui_model::{Trace, VirtualDuration, VirtualTime};

use crate::analyzer::{AnalyzerConfig, SubspaceInfo};
use crate::campaign::SessionStep;
use crate::coordinator::CoordinatorEvent;
use crate::metrics::curves::CurvePoint;

/// The four parallel-run settings of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RunMode {
    /// Uncoordinated parallel testing (different seeds only).
    Baseline,
    /// TaOPT, duration-constrained mode.
    TaoptDuration,
    /// TaOPT, resource-constrained mode.
    TaoptResource,
    /// ParaAim-style activity-granularity partitioning (§3.3).
    ActivityPartition,
    /// PATS-style master–slave dispatch (related work, §9): the master
    /// explores freely; each newly discovered screen is dispatched to a
    /// slave, which jumps there by Intent and explores locally. The paper
    /// notes this "is highly susceptible to overlapping explorations,
    /// mainly due to many UI transitions being bidirectional".
    PatsMasterSlave,
}

impl RunMode {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            RunMode::Baseline => "Baseline",
            RunMode::TaoptDuration => "TaOPT(Duration)",
            RunMode::TaoptResource => "TaOPT(Resource)",
            RunMode::ActivityPartition => "ActivityPartition",
            RunMode::PatsMasterSlave => "PATS(MasterSlave)",
        }
    }

    /// Whether this mode runs the TaOPT coordinator.
    pub fn uses_taopt(&self) -> bool {
        matches!(self, RunMode::TaoptDuration | RunMode::TaoptResource)
    }
}

/// Configuration of one parallel session.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// The black-box tool under coordination.
    pub tool: ToolKind,
    /// The run mode.
    pub mode: RunMode,
    /// `d_max`: maximum concurrent instances (the paper uses 5).
    pub instances: usize,
    /// `l_p`: the wall-clock budget of duration-bounded modes (1 h in the
    /// paper).
    pub duration: VirtualDuration,
    /// Machine-time budget of the resource-constrained mode; defaults to
    /// `instances × duration` (= 5 machine hours in the paper).
    pub machine_budget: Option<VirtualDuration>,
    /// Base random seed; instance `i` uses `seed + i`-derived streams.
    pub seed: u64,
    /// Lock-step round length.
    pub tick: VirtualDuration,
    /// Stall timeout before deallocation (1 min in the paper).
    pub stall_timeout: VirtualDuration,
    /// Analyzer parameters; defaults depend on the mode.
    pub analyzer: AnalyzerConfig,
    /// Emulator timing and flakiness knobs for every device.
    pub emulator: taopt_device::EmulatorConfig,
    /// Feed the round's traces to the analyzer as one batch
    /// ([`crate::coordinator::TestCoordinator::process_traces`]) instead
    /// of one call per instance. Byte-identical either way (the
    /// golden-trace fixture runs both arms); `false` forces the legacy
    /// serial loop.
    pub batched_ingestion: bool,
    /// Learned analyzer state from a previous version's campaign. When
    /// set (and the mode runs the TaOPT coordinator), the analyzer boots
    /// seeded with it instead of cold; see [`crate::warmstart`].
    pub warm_start: Option<Arc<crate::warmstart::WarmStart>>,
    /// Capture a [`crate::warmstart::WarmStart`] bundle when the session
    /// finishes (TaOPT modes only), surfaced through
    /// `SessionFinish::warm` / `AppReport::warm`.
    pub capture_warm_start: bool,
}

impl SessionConfig {
    /// The paper's defaults for the given tool and mode
    /// (`d_max = 5`, `l_p = 1 h`, budget `5` machine-hours).
    pub fn new(tool: ToolKind, mode: RunMode) -> Self {
        let analyzer = match mode {
            RunMode::TaoptResource => AnalyzerConfig::resource_mode(),
            _ => AnalyzerConfig::duration_mode(),
        };
        SessionConfig {
            tool,
            mode,
            instances: 5,
            duration: VirtualDuration::from_hours(1),
            machine_budget: None,
            seed: 0,
            tick: VirtualDuration::from_secs(10),
            stall_timeout: VirtualDuration::from_mins(3),
            analyzer,
            emulator: taopt_device::EmulatorConfig::default(),
            batched_ingestion: true,
            warm_start: None,
            capture_warm_start: false,
        }
    }

    /// The effective machine budget.
    pub fn effective_budget(&self) -> VirtualDuration {
        self.machine_budget
            .unwrap_or(self.duration * self.instances as u64)
    }
}

/// Per-instance results of a session.
#[derive(Debug, Clone)]
pub struct InstanceResult {
    /// Instance id.
    pub instance: InstanceId,
    /// Allocation time.
    pub allocated_at: VirtualTime,
    /// Deallocation time.
    pub deallocated_at: VirtualTime,
    /// Methods covered by this instance.
    pub covered: BTreeSet<MethodId>,
    /// Time-stamped cover events (for overlap-over-time analyses).
    pub cover_events: Vec<(VirtualTime, MethodId)>,
    /// Unique crashes triggered on this instance.
    pub crashes: BTreeSet<CrashSignature>,
    /// Every crash occurrence (time, signature) on this instance.
    pub crash_occurrences: Vec<(VirtualTime, CrashSignature)>,
    /// The device the instance ran on.
    pub device: taopt_device::DeviceId,
    /// The instance's UI transition trace.
    pub trace: Trace,
}

impl InstanceResult {
    /// Covered methods at (or before) a given time.
    pub fn covered_at(&self, time: VirtualTime) -> BTreeSet<MethodId> {
        self.cover_events
            .iter()
            .take_while(|(t, _)| *t <= time)
            .map(|(_, m)| *m)
            .collect()
    }
}

/// The complete outcome of one parallel session.
#[derive(Debug, Clone)]
pub struct SessionResult {
    /// The tool used.
    pub tool: ToolKind,
    /// The run mode.
    pub mode: RunMode,
    /// Per-instance results (in allocation order).
    pub instances: Vec<InstanceResult>,
    /// Cumulative union coverage over global time.
    pub union_curve: Vec<CurvePoint>,
    /// Total machine time consumed.
    pub machine_time: VirtualDuration,
    /// Wall-clock length of the session.
    pub wall_clock: VirtualDuration,
    /// Subspaces identified (TaOPT modes; empty otherwise).
    pub subspaces: Vec<SubspaceInfo>,
    /// Coordinator decision log (TaOPT modes).
    pub coordinator_events: Vec<CoordinatorEvent>,
    /// Concurrency over time: (round boundary, active instances).
    pub concurrency_timeline: Vec<(VirtualTime, usize)>,
}

impl SessionResult {
    /// Union method coverage across instances.
    pub fn union_coverage(&self) -> usize {
        self.union_curve.last().map(|p| p.covered).unwrap_or(0)
    }

    /// Union of unique crashes across instances.
    pub fn unique_crashes(&self) -> BTreeSet<CrashSignature> {
        self.instances
            .iter()
            .flat_map(|i| i.crashes.iter().copied())
            .collect()
    }

    /// Union covered-method set.
    pub fn union_covered(&self) -> BTreeSet<MethodId> {
        self.instances
            .iter()
            .flat_map(|i| i.covered.iter().copied())
            .collect()
    }

    /// Per-instance coverage sets (for AJS).
    pub fn coverage_sets(&self) -> Vec<BTreeSet<MethodId>> {
        self.instances.iter().map(|i| i.covered.clone()).collect()
    }

    /// Traces of all instances.
    pub fn traces(&self) -> Vec<&Trace> {
        self.instances.iter().map(|i| &i.trace).collect()
    }

    /// Aggregates all crash occurrences into a ranked triage report.
    pub fn triage_report(&self) -> taopt_device::TriageReport {
        use taopt_device::CrashCollector;
        let collectors: Vec<(taopt_device::DeviceId, CrashCollector)> = self
            .instances
            .iter()
            .map(|i| {
                let mut c = CrashCollector::new();
                for (t, sig) in &i.crash_occurrences {
                    c.record(*t, *sig);
                }
                (i.device, c)
            })
            .collect();
        taopt_device::TriageReport::build(collectors.iter().map(|(d, c)| (*d, c)))
    }

    /// Peak concurrency reached during the session.
    pub fn peak_concurrency(&self) -> usize {
        self.concurrency_timeline
            .iter()
            .map(|(_, n)| *n)
            .max()
            .unwrap_or(0)
    }

    /// Mean concurrency over the session's rounds.
    pub fn mean_concurrency(&self) -> f64 {
        if self.concurrency_timeline.is_empty() {
            return 0.0;
        }
        self.concurrency_timeline
            .iter()
            .map(|(_, n)| *n)
            .sum::<usize>() as f64
            / self.concurrency_timeline.len() as f64
    }
}

/// Runs parallel testing sessions.
#[derive(Debug)]
pub struct ParallelSession;

impl ParallelSession {
    /// Runs a session to completion and returns its results.
    ///
    /// The run is fully deterministic given `config.seed`. Internally this
    /// is a thin driver over [`SessionStep`] — the per-round loop factored
    /// out so the campaign scheduler (`crate::campaign`) can interleave
    /// many sessions over one shared farm — allocating through the device
    /// seam ([`taopt_device::DevicePool`]) from a private [`PlainPool`] of
    /// capacity `d_max` that always satisfies demand, which reproduces the
    /// legacy dedicated-slice behaviour exactly. Orphan repair is on, as
    /// in every driver: a confirmed subspace whose owners all retired in
    /// one round is re-dedicated to a survivor instead of being stranded.
    pub fn run(app: Arc<App>, config: &SessionConfig) -> SessionResult {
        taopt_telemetry::global()
            .counter("sessions_started_total")
            .inc();
        let mut pool = PlainPool::new(config.instances);
        // Single-app runs ride the process-local shared compute pool —
        // the same machinery campaigns size per-config.
        let mut step = SessionStep::new(app, config.clone())
            .with_orphan_repair(true)
            .with_compute(crate::campaign::pool::ComputePool::shared());
        loop {
            // A dedicated pool of capacity d_max can always satisfy the
            // step's demand (demand() never exceeds d_max − active).
            while step.demand() > 0 {
                let PoolDecision::Granted(device) = pool.allocate(step.now()) else {
                    break;
                };
                step.grant(device);
            }
            let out = step.advance_round();
            let now = step.now();
            for d in out.released {
                pool.release(d, now);
            }
            if out.done {
                break;
            }
        }
        let end = step.now();
        let fin = step.finish();
        for d in fin.released {
            pool.release(d, end);
        }
        fin.result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taopt_app_sim::{generate_app, GeneratorConfig};

    fn small_app(seed: u64) -> Arc<App> {
        Arc::new(generate_app(&GeneratorConfig::small("sess", seed)).unwrap())
    }

    fn quick(tool: ToolKind, mode: RunMode) -> SessionConfig {
        let mut c = SessionConfig::new(tool, mode);
        c.instances = 3;
        c.duration = VirtualDuration::from_mins(8);
        c.tick = VirtualDuration::from_secs(10);
        c.analyzer.find_space.l_min = VirtualDuration::from_secs(45);
        c.analyzer.analysis_interval = VirtualDuration::from_secs(20);
        c
    }

    #[test]
    fn baseline_runs_fixed_instances_for_the_duration() {
        let r = ParallelSession::run(small_app(1), &quick(ToolKind::Monkey, RunMode::Baseline));
        assert_eq!(r.instances.len(), 3);
        assert!(r.union_coverage() > 0);
        assert!(r.subspaces.is_empty());
        // Machine time ≈ 3 × 8 min.
        let expect = VirtualDuration::from_mins(24);
        let diff = r.machine_time.as_secs().abs_diff(expect.as_secs());
        assert!(diff < 120, "machine time {} vs {}", r.machine_time, expect);
    }

    #[test]
    fn taopt_duration_finds_and_dedicates_subspaces() {
        let r = ParallelSession::run(small_app(2), &quick(ToolKind::Ape, RunMode::TaoptDuration));
        assert!(
            r.subspaces.iter().any(|s| s.confirmed),
            "expected confirmed subspaces, got {:?}",
            r.subspaces.len()
        );
        assert!(
            r.coordinator_events
                .iter()
                .any(|e| matches!(e, CoordinatorEvent::SubspaceDedicated { .. })),
            "dedication events expected"
        );
    }

    #[test]
    fn taopt_resource_respects_budget() {
        let mut cfg = quick(ToolKind::Monkey, RunMode::TaoptResource);
        cfg.machine_budget = Some(VirtualDuration::from_mins(15));
        let r = ParallelSession::run(small_app(3), &cfg);
        // Budget may be exceeded by at most one tick × instances.
        assert!(
            r.machine_time.as_secs() <= 15 * 60 + 3 * 10 + 60,
            "machine time {} exceeds budget",
            r.machine_time
        );
        assert!(r.union_coverage() > 0);
    }

    #[test]
    fn activity_partition_blocks_cross_activity_widgets() {
        let r = ParallelSession::run(
            small_app(4),
            &quick(ToolKind::WcTester, RunMode::ActivityPartition),
        );
        assert_eq!(r.instances.len(), 3);
        assert!(r.union_coverage() > 0);
    }

    #[test]
    fn sessions_are_deterministic() {
        let cfg = quick(ToolKind::Monkey, RunMode::TaoptDuration);
        let a = ParallelSession::run(small_app(5), &cfg);
        let b = ParallelSession::run(small_app(5), &cfg);
        assert_eq!(a.union_coverage(), b.union_coverage());
        assert_eq!(a.unique_crashes(), b.unique_crashes());
        assert_eq!(a.machine_time, b.machine_time);
        assert_eq!(a.subspaces.len(), b.subspaces.len());
    }

    #[test]
    fn union_curve_is_monotone() {
        let r = ParallelSession::run(small_app(6), &quick(ToolKind::Ape, RunMode::Baseline));
        assert!(r
            .union_curve
            .windows(2)
            .all(|w| w[0].covered < w[1].covered && w[0].time <= w[1].time));
    }

    #[test]
    fn flaky_devices_still_complete_sessions() {
        let mut cfg = quick(ToolKind::Ape, RunMode::TaoptDuration);
        cfg.emulator.event_loss = 0.25;
        let flaky = ParallelSession::run(small_app(12), &cfg);
        assert!(flaky.union_coverage() > 0);
        let mut clean_cfg = quick(ToolKind::Ape, RunMode::TaoptDuration);
        clean_cfg.emulator.event_loss = 0.0;
        let clean = ParallelSession::run(small_app(12), &clean_cfg);
        assert!(
            flaky.union_coverage() <= clean.union_coverage(),
            "losing events cannot increase coverage: {} vs {}",
            flaky.union_coverage(),
            clean.union_coverage()
        );
    }

    #[test]
    fn triage_report_matches_unique_crashes() {
        // An app with shallow-armed crash points so a short run hits some.
        let mut gcfg = GeneratorConfig::small("triage", 11);
        gcfg.crash_points = 8;
        gcfg.crash_probability = 0.2;
        gcfg.crash_depth_fraction = 0.2;
        let app = Arc::new(taopt_app_sim::generate_app(&gcfg).unwrap());
        let mut cfg = quick(ToolKind::Monkey, RunMode::Baseline);
        cfg.duration = VirtualDuration::from_mins(15);
        let r = ParallelSession::run(app, &cfg);
        let report = r.triage_report();
        assert_eq!(report.unique_count(), r.unique_crashes().len());
        assert!(report.occurrence_count() >= report.unique_count());
        if report.unique_count() > 0 {
            let text = report.render("triage");
            assert!(text.contains("unique crash"));
        }
    }

    #[test]
    fn concurrency_timeline_is_bounded_by_dmax() {
        let cfg = quick(ToolKind::Monkey, RunMode::TaoptResource);
        let r = ParallelSession::run(small_app(9), &cfg);
        assert!(!r.concurrency_timeline.is_empty());
        assert!(r.peak_concurrency() <= cfg.instances);
        assert!(r.mean_concurrency() > 0.0);
        // Resource mode starts with a single instance.
        assert_eq!(r.concurrency_timeline[0].1, 1);
    }

    #[test]
    fn never_exceeds_dmax() {
        // Indirect check: machine time can never exceed d_max × wall clock.
        let cfg = quick(ToolKind::Monkey, RunMode::TaoptDuration);
        let r = ParallelSession::run(small_app(7), &cfg);
        let cap = r.wall_clock * cfg.instances as u64;
        assert!(
            r.machine_time.as_millis() <= cap.as_millis() + 60_000,
            "machine {} vs cap {}",
            r.machine_time,
            cap
        );
    }
}

#[cfg(test)]
mod pats_tests {
    use super::*;
    use taopt_app_sim::{generate_app, GeneratorConfig};

    #[test]
    fn pats_mode_runs_and_dispatches() {
        let app = Arc::new(generate_app(&GeneratorConfig::small("pats", 4)).unwrap());
        let mut cfg = SessionConfig::new(ToolKind::Monkey, RunMode::PatsMasterSlave);
        cfg.instances = 3;
        cfg.duration = VirtualDuration::from_mins(8);
        cfg.stall_timeout = VirtualDuration::from_secs(60);
        let r = ParallelSession::run(app, &cfg);
        assert_eq!(r.instances.len(), 3);
        assert!(r.union_coverage() > 0);
        // Slaves received Intent jumps: their traces contain action-less
        // observations beyond the initial one.
        let slave_jumps: usize = r
            .instances
            .iter()
            .filter(|i| i.instance.0 != 0)
            .map(|i| {
                i.trace
                    .events()
                    .iter()
                    .filter(|e| e.action.is_none())
                    .count()
            })
            .sum();
        assert!(slave_jumps > 2, "expected dispatches, saw {slave_jumps}");
    }

    #[test]
    fn pats_is_deterministic() {
        let app = Arc::new(generate_app(&GeneratorConfig::small("pats", 5)).unwrap());
        let mut cfg = SessionConfig::new(ToolKind::Ape, RunMode::PatsMasterSlave);
        cfg.instances = 3;
        cfg.duration = VirtualDuration::from_mins(6);
        let a = ParallelSession::run(Arc::clone(&app), &cfg);
        let b = ParallelSession::run(app, &cfg);
        assert_eq!(a.union_coverage(), b.union_coverage());
    }
}
