//! Offline trace persistence and the preliminary study (§3).
//!
//! The paper's preliminary study (RQ1/RQ2) analyzes *recorded* traces of
//! uncoordinated parallel runs. This module gives the reproduction the
//! same workflow: persist the UI-transition traces of a session to a
//! trace archive (JSON), reload them later, and run the offline analyses —
//! subspace partitioning, overlap histograms, UI-occurrence statistics —
//! without re-executing anything.
//!
//! Archives are also the raw material for debugging the online analyzer:
//! `replay_analysis` re-feeds an archive through a fresh
//! [`OnlineTraceAnalyzer`] chunk by chunk, reproducing its decisions
//! deterministically.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use taopt_toller::InstanceId;
use taopt_ui_model::json::{trace_from_value, trace_to_value, Value};
use taopt_ui_model::{Trace, VirtualTime};

use crate::analyzer::{AnalyzerConfig, OnlineTraceAnalyzer, SubspaceInfo};
use crate::metrics::overlap::{average_ui_occurrences, subspace_overlap_histogram};
use crate::partition::{partition_traces, PartitionConfig};
use crate::session::SessionResult;

/// A persisted bundle of per-instance traces from one parallel run.
#[derive(Debug, Clone, Default)]
pub struct TraceArchive {
    /// Label for reports (app name, tool, mode…).
    pub label: String,
    /// Instance id (as raw u32) → trace.
    pub traces: Vec<(u32, Trace)>,
}

impl TraceArchive {
    /// Collects the traces of a finished session.
    pub fn from_session(label: impl Into<String>, result: &SessionResult) -> Self {
        TraceArchive {
            label: label.into(),
            traces: result
                .instances
                .iter()
                .map(|i| (i.instance.0, i.trace.clone()))
                .collect(),
        }
    }

    /// Number of traces.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether the archive holds no traces.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Total events across traces.
    pub fn event_count(&self) -> usize {
        self.traces.iter().map(|(_, t)| t.len()).sum()
    }

    /// Borrowed view of the traces (for the metrics functions).
    pub fn trace_refs(&self) -> Vec<&Trace> {
        self.traces.iter().map(|(_, t)| t).collect()
    }

    /// Serializes to a writer as JSON.
    ///
    /// # Errors
    ///
    /// Propagates I/O and serialization failures.
    pub fn write_to<W: Write>(&self, mut writer: W) -> std::io::Result<()> {
        let traces = self
            .traces
            .iter()
            .map(|(iid, trace)| {
                Value::Object(vec![
                    ("instance".to_owned(), Value::from(*iid)),
                    ("trace".to_owned(), trace_to_value(trace)),
                ])
            })
            .collect();
        let doc = Value::Object(vec![
            ("label".to_owned(), Value::from(self.label.clone())),
            ("traces".to_owned(), Value::Array(traces)),
        ]);
        writer.write_all(doc.to_json_string().as_bytes())
    }

    /// Deserializes from a reader.
    ///
    /// # Errors
    ///
    /// Propagates I/O and deserialization failures.
    pub fn read_from<R: Read>(mut reader: R) -> std::io::Result<Self> {
        let mut text = String::new();
        reader.read_to_string(&mut text)?;
        let doc = Value::parse(&text).map_err(std::io::Error::other)?;
        let convert = || -> Result<Self, taopt_ui_model::JsonError> {
            let label = doc
                .require("label")?
                .as_str()
                .ok_or_else(|| taopt_ui_model::JsonError::conversion("label must be a string"))?
                .to_owned();
            let traces = doc
                .require("traces")?
                .as_array()
                .ok_or_else(|| taopt_ui_model::JsonError::conversion("traces must be an array"))?
                .iter()
                .map(|entry| {
                    let iid = entry
                        .require("instance")?
                        .as_u64()
                        .and_then(|n| u32::try_from(n).ok())
                        .ok_or_else(|| {
                            taopt_ui_model::JsonError::conversion("instance must be a u32")
                        })?;
                    Ok((iid, trace_from_value(entry.require("trace")?)?))
                })
                .collect::<Result<_, taopt_ui_model::JsonError>>()?;
            Ok(TraceArchive { label, traces })
        };
        convert().map_err(std::io::Error::other)
    }

    /// Saves to a file (buffered).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        self.write_to(BufWriter::new(File::create(path)?))
    }

    /// Loads from a file (buffered).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Self::read_from(BufReader::new(File::open(path)?))
    }
}

/// The outcome of the §3 preliminary study over recorded traces.
#[derive(Debug, Clone)]
pub struct StudyReport {
    /// Archive label.
    pub label: String,
    /// Subspaces found by the conservative offline partitioner.
    pub subspace_count: usize,
    /// Histogram: instances-that-explored → number of subspaces (Table 1).
    pub overlap_histogram: BTreeMap<usize, usize>,
    /// Average occurrences of each distinct abstract UI (Table 6 metric).
    pub avg_ui_occurrences: f64,
    /// Distinct abstract screens across all traces.
    pub distinct_screens: usize,
    /// Total monitored transitions.
    pub total_events: usize,
}

impl StudyReport {
    /// Fraction of subspaces explored by more than one instance.
    pub fn multi_explored_fraction(&self) -> f64 {
        let total: usize = self.overlap_histogram.values().sum();
        if total == 0 {
            return 0.0;
        }
        let multi: usize = self
            .overlap_histogram
            .iter()
            .filter(|(k, _)| **k > 1)
            .map(|(_, v)| *v)
            .sum();
        multi as f64 / total as f64
    }
}

/// Runs the offline preliminary study on an archive.
pub fn preliminary_study(archive: &TraceArchive, config: &PartitionConfig) -> StudyReport {
    let traces = archive.trace_refs();
    let subspaces = partition_traces(&traces, config);
    let overlap_histogram = subspace_overlap_histogram(&subspaces, &traces, 2);
    let distinct: std::collections::BTreeSet<_> = traces
        .iter()
        .flat_map(|t| t.events().iter().map(|e| e.abstract_id))
        .collect();
    StudyReport {
        label: archive.label.clone(),
        subspace_count: subspaces.len(),
        overlap_histogram,
        avg_ui_occurrences: average_ui_occurrences(&traces),
        distinct_screens: distinct.len(),
        total_events: archive.event_count(),
    }
}

/// Replays an archive through a fresh analyzer, feeding each trace in
/// growing chunks exactly as the live coordinator would, and returns the
/// subspaces it identifies. Deterministic; useful for debugging analyzer
/// changes against recorded runs.
pub fn replay_analysis(archive: &TraceArchive, config: AnalyzerConfig) -> Vec<SubspaceInfo> {
    let mut analyzer = OnlineTraceAnalyzer::new(config);
    // Interleave instances round-robin in chunks, approximating the
    // lock-step session schedule. Each instance's partial trace grows in
    // place (append-only, like a live trace), so the analyzer's
    // per-instance engine ingests every archived event exactly once
    // instead of re-cloning an O(N) prefix per chunk.
    let chunk = 10usize;
    let max_len = archive
        .traces
        .iter()
        .map(|(_, t)| t.len())
        .max()
        .unwrap_or(0);
    let mut partials: Vec<Trace> = archive.traces.iter().map(|_| Trace::new()).collect();
    let mut upto = chunk;
    while upto <= max_len + chunk {
        for ((iid, trace), partial) in archive.traces.iter().zip(partials.iter_mut()) {
            let end = upto.min(trace.len());
            if end == 0 {
                continue;
            }
            for e in &trace.events()[partial.len()..end] {
                partial.push(e.clone());
            }
            let now = partial.end_time().unwrap_or(VirtualTime::ZERO);
            analyzer.maybe_analyze(InstanceId(*iid), partial, now);
        }
        upto += chunk;
    }
    analyzer.subspaces().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use taopt_app_sim::{generate_app, GeneratorConfig};
    use taopt_tools::ToolKind;
    use taopt_ui_model::VirtualDuration;

    use crate::session::{ParallelSession, RunMode, SessionConfig};

    fn session() -> SessionResult {
        let app = Arc::new(generate_app(&GeneratorConfig::small("off", 3)).unwrap());
        let mut cfg = SessionConfig::new(ToolKind::Monkey, RunMode::Baseline);
        cfg.instances = 3;
        cfg.duration = VirtualDuration::from_mins(6);
        ParallelSession::run(app, &cfg)
    }

    #[test]
    fn archive_roundtrips_through_json() {
        let result = session();
        let archive = TraceArchive::from_session("demo", &result);
        assert_eq!(archive.len(), 3);
        let mut buf = Vec::new();
        archive.write_to(&mut buf).unwrap();
        let restored = TraceArchive::read_from(buf.as_slice()).unwrap();
        assert_eq!(restored.label, "demo");
        assert_eq!(restored.len(), archive.len());
        assert_eq!(restored.event_count(), archive.event_count());
        // Events survive intact, including abstractions.
        for ((_, a), (_, b)) in archive.traces.iter().zip(&restored.traces) {
            assert_eq!(a.len(), b.len());
            for (x, y) in a.events().iter().zip(b.events()) {
                assert_eq!(x.abstract_id, y.abstract_id);
                assert_eq!(x.abstraction.id(), y.abstraction.id());
                assert_eq!(x.action_widget_rid, y.action_widget_rid);
            }
        }
    }

    #[test]
    fn archive_saves_to_disk() {
        let result = session();
        let archive = TraceArchive::from_session("disk", &result);
        let path = std::env::temp_dir().join("taopt-archive-test.json");
        archive.save(&path).unwrap();
        let restored = TraceArchive::load(&path).unwrap();
        assert_eq!(restored.event_count(), archive.event_count());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn study_report_summarizes_a_run() {
        let result = session();
        let archive = TraceArchive::from_session("study", &result);
        let report = preliminary_study(&archive, &PartitionConfig::default());
        assert_eq!(report.total_events, archive.event_count());
        assert!(report.distinct_screens > 5);
        assert!((0.0..=1.0).contains(&report.multi_explored_fraction()));
    }

    #[test]
    fn replay_is_deterministic() {
        let result = session();
        let archive = TraceArchive::from_session("replay", &result);
        let mut cfg = AnalyzerConfig::duration_mode();
        cfg.find_space.l_min = VirtualDuration::from_secs(40);
        let a = replay_analysis(&archive, cfg.clone());
        let b = replay_analysis(&archive, cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.screens, y.screens);
            assert_eq!(x.confirmed, y.confirmed);
        }
    }
}
