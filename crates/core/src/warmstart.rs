//! Warm-start bundles: learned analyzer state that survives a release
//! boundary.
//!
//! A finished campaign has learned three reusable artifacts: the confirmed
//! subspace registry (entry widgets + screen sets), the pairwise
//! [`SimilarityCache`](crate::findspace::SimilarityCache) decisions, and
//! the per-app [`ScreenArena`](crate::findspace::ScreenArena) population —
//! plus a coverage baseline for longitudinal deltas. A [`WarmStart`]
//! captures all of them so the next version's campaign can start from
//! them instead of cold.
//!
//! The bundle splits into two halves with very different obligations:
//!
//! * **Pure accelerators** — similarity decisions and arena
//!   representatives. Decisions are pure functions of abstract-id pairs
//!   and arena ids never leak into results, so pre-seeding them can only
//!   skip computes, never change an outcome. They are *always* safe to
//!   carry (the empty-diff proptest pins this as byte-identity).
//! * **Behavioral carry-over** — confirmed subspaces. Seeding them
//!   re-dedicates known territory immediately (the per-round orphan-repair
//!   pass assigns each an owner at round 1), which *changes* exploration —
//!   deliberately. They are carried only across a non-empty
//!   [`VersionDiff`](taopt_app_sim::VersionDiff), and only when the diff's
//!   touched surface leaves them intact; see [`WarmStart::invalidate`].

use std::collections::BTreeSet;

use taopt_app_sim::TouchedSurface;
use taopt_toller::EntrypointRule;
use taopt_ui_model::{AbstractScreenId, TraceEvent};

/// One confirmed subspace carried across a release boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmSubspace {
    /// Entry widgets whose blocking seals the subspace.
    pub entrypoints: Vec<EntrypointRule>,
    /// Abstract screens belonging to the subspace.
    pub screens: BTreeSet<AbstractScreenId>,
}

/// How much of a warm bundle survived invalidation against a diff.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WarmReuse {
    /// Subspaces carried intact (re-dedicated immediately).
    pub carried: usize,
    /// Subspaces invalidated (fall back to cold discovery).
    pub invalidated: usize,
}

impl WarmReuse {
    /// Carried fraction in `[0, 1]` (1.0 when nothing was learned yet).
    pub fn ratio(&self) -> f64 {
        let total = self.carried + self.invalidated;
        if total == 0 {
            1.0
        } else {
            self.carried as f64 / total as f64
        }
    }
}

/// Learned analyzer state extracted from a finished campaign, ready to
/// seed the next version's analyzer.
#[derive(Debug, Clone, Default)]
pub struct WarmStart {
    /// Confirmed subspaces (behavioral carry-over).
    pub subspaces: Vec<WarmSubspace>,
    /// Similarity-cache decisions, sorted by key (pure accelerator).
    pub similarity: Vec<((u64, u64), bool)>,
    /// Arena representatives, sorted by abstract id (pure accelerator).
    pub arena_reps: Vec<TraceEvent>,
    /// Final union method coverage of the capturing campaign, for
    /// longitudinal coverage deltas.
    pub coverage_baseline: usize,
}

impl PartialEq for WarmStart {
    fn eq(&self, other: &Self) -> bool {
        // Arena reps compare by abstract identity: the rep's payload is
        // only ever used to re-intern that identity.
        let ids = |w: &WarmStart| {
            w.arena_reps
                .iter()
                .map(|e| e.abstract_id)
                .collect::<Vec<_>>()
        };
        self.subspaces == other.subspaces
            && self.similarity == other.similarity
            && ids(self) == ids(other)
            && self.coverage_baseline == other.coverage_baseline
    }
}

impl WarmStart {
    /// Whether the bundle carries nothing.
    pub fn is_empty(&self) -> bool {
        self.subspaces.is_empty() && self.similarity.is_empty() && self.arena_reps.is_empty()
    }

    /// Drops the behavioral half, keeping only the pure accelerators.
    ///
    /// This is the correct carry-over for an *empty* diff (a re-release of
    /// the same binary): caches transfer, but exhausted territory is not
    /// re-dedicated — the warm path must then be byte-identical to cold.
    pub fn accelerators_only(&self) -> WarmStart {
        WarmStart {
            subspaces: Vec::new(),
            similarity: self.similarity.clone(),
            arena_reps: self.arena_reps.clone(),
            coverage_baseline: self.coverage_baseline,
        }
    }

    /// Re-validates the bundle against the surface a [`VersionDiff`]
    /// touches, returning the surviving bundle and the reuse tally.
    ///
    /// A subspace is invalidated iff the diff touches any of its screens,
    /// any screen hosting one of its entrypoints, or renames one of its
    /// entrypoint widgets — in all three cases the learned structure no
    /// longer matches what the new version renders, so the subspace falls
    /// back to cold discovery. Similarity decisions and arena reps
    /// involving touched screens are dropped too (their abstract ids no
    /// longer occur, so keeping them would only hold dead weight).
    ///
    /// [`VersionDiff`]: taopt_app_sim::VersionDiff
    pub fn invalidate(&self, touched: &TouchedSurface) -> (WarmStart, WarmReuse) {
        let touched_raw: BTreeSet<u64> = touched.screens.iter().map(|s| s.0).collect();
        let survives = |s: &WarmSubspace| {
            s.screens.is_disjoint(&touched.screens)
                && s.entrypoints.iter().all(|e| {
                    !touched.screens.contains(&e.screen)
                        && !touched.widget_rids.contains(&e.widget_rid)
                })
        };
        let subspaces: Vec<WarmSubspace> = self
            .subspaces
            .iter()
            .filter(|s| survives(s))
            .cloned()
            .collect();
        let reuse = WarmReuse {
            carried: subspaces.len(),
            invalidated: self.subspaces.len() - subspaces.len(),
        };
        let similarity = self
            .similarity
            .iter()
            .filter(|((a, b), _)| !touched_raw.contains(a) && !touched_raw.contains(b))
            .copied()
            .collect();
        let arena_reps = self
            .arena_reps
            .iter()
            .filter(|e| !touched_raw.contains(&e.abstract_id.0))
            .cloned()
            .collect();
        (
            WarmStart {
                subspaces,
                similarity,
                arena_reps,
                coverage_baseline: self.coverage_baseline,
            },
            reuse,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn subspace(screens: &[u64], host: u64, rid: &str) -> WarmSubspace {
        WarmSubspace {
            entrypoints: vec![EntrypointRule::new(AbstractScreenId(host), rid)],
            screens: screens.iter().map(|s| AbstractScreenId(*s)).collect(),
        }
    }

    fn bundle() -> WarmStart {
        WarmStart {
            subspaces: vec![
                subspace(&[10, 11], 1, "tab_a"),
                subspace(&[20, 21], 1, "tab_b"),
            ],
            similarity: vec![((10, 11), true), ((10, 20), false), ((20, 21), true)],
            arena_reps: Vec::new(),
            coverage_baseline: 500,
        }
    }

    fn touched(screens: &[u64], rids: &[&str]) -> TouchedSurface {
        TouchedSurface {
            screens: screens.iter().map(|s| AbstractScreenId(*s)).collect(),
            widget_rids: rids.iter().map(|r| r.to_string()).collect(),
        }
    }

    #[test]
    fn empty_surface_carries_everything() {
        let (w, reuse) = bundle().invalidate(&TouchedSurface::default());
        assert_eq!(
            reuse,
            WarmReuse {
                carried: 2,
                invalidated: 0
            }
        );
        assert_eq!(reuse.ratio(), 1.0);
        assert_eq!(w, bundle());
    }

    #[test]
    fn touched_screen_invalidates_its_subspace_and_cache_entries() {
        let (w, reuse) = bundle().invalidate(&touched(&[10], &[]));
        assert_eq!(
            reuse,
            WarmReuse {
                carried: 1,
                invalidated: 1
            }
        );
        assert_eq!(w.subspaces.len(), 1);
        assert_eq!(w.subspaces[0].screens.len(), 2);
        assert!(w.subspaces[0].screens.contains(&AbstractScreenId(20)));
        assert_eq!(w.similarity, vec![((20, 21), true)]);
        assert!((reuse.ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn renamed_entry_widget_invalidates_its_subspace() {
        let (w, reuse) = bundle().invalidate(&touched(&[], &["tab_b"]));
        assert_eq!(
            reuse,
            WarmReuse {
                carried: 1,
                invalidated: 1
            }
        );
        assert!(w.subspaces[0].screens.contains(&AbstractScreenId(10)));
    }

    #[test]
    fn touched_entry_host_invalidates_every_subspace_entered_there() {
        let (_, reuse) = bundle().invalidate(&touched(&[1], &[]));
        assert_eq!(
            reuse,
            WarmReuse {
                carried: 0,
                invalidated: 2
            }
        );
        assert_eq!(reuse.ratio(), 0.0);
    }

    #[test]
    fn accelerators_only_drops_behavioral_half() {
        let w = bundle().accelerators_only();
        assert!(w.subspaces.is_empty());
        assert_eq!(w.similarity.len(), 3);
        assert_eq!(w.coverage_baseline, 500);
        assert!(!w.is_empty());
    }
}
