//! Error types for the TaOPT core.

use std::error::Error;
use std::fmt;

/// Errors produced by TaOPT's analysis and coordination layers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TaoptError {
    /// An analysis was requested on a trace that is still too short.
    TraceTooShort {
        /// Events available.
        len: usize,
        /// Events required.
        required: usize,
    },
    /// A configuration value was invalid.
    BadConfig(String),
    /// A subspace id was referenced that does not exist.
    UnknownSubspace(u32),
    /// Deriving the next app version in a campaign sequence failed.
    Evolution(String),
}

impl fmt::Display for TaoptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaoptError::TraceTooShort { len, required } => {
                write!(f, "trace has {len} events but analysis requires {required}")
            }
            TaoptError::BadConfig(msg) => write!(f, "invalid configuration: {msg}"),
            TaoptError::UnknownSubspace(id) => write!(f, "unknown subspace id {id}"),
            TaoptError::Evolution(msg) => write!(f, "app evolution failed: {msg}"),
        }
    }
}

impl Error for TaoptError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(TaoptError::TraceTooShort {
            len: 3,
            required: 10
        }
        .to_string()
        .contains('3'));
        assert!(TaoptError::BadConfig("x".into()).to_string().contains('x'));
        assert!(TaoptError::UnknownSubspace(7).to_string().contains('7'));
        assert!(TaoptError::Evolution("y".into()).to_string().contains('y'));
    }
}
