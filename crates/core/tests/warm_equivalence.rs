//! Warm-start purity: across an *empty* release diff, warm-starting is a
//! pure accelerator.
//!
//! When version N+1 is a re-release of the same binary
//! ([`VersionDiff::empty`]), the sequence layer carries only the
//! accelerator half of the captured [`WarmStart`]
//! ([`WarmStart::accelerators_only`]) — cached similarity decisions and
//! arena representatives, no behavioral carry-over. This suite pins the
//! law that makes that safe: a warm-started campaign on the re-released
//! app is **byte-identical** (per the canonical coverage report) to a
//! cold start on the same seed.

use std::sync::Arc;

use proptest::prelude::*;

use taopt::session::{RunMode, SessionConfig};
use taopt::warmstart::WarmStart;
use taopt::{run_campaign, CampaignApp, CampaignConfig, CampaignResult};
use taopt_app_sim::{generate_app, App, GeneratorConfig, VersionDiff};
use taopt_tools::ToolKind;
use taopt_ui_model::VirtualDuration;

/// A session at the scale the sequence suites use: small app, short
/// release, confirmation threshold reachable within it.
fn session(seed: u64, instances: usize, mins: u64) -> SessionConfig {
    let mut config = SessionConfig::new(ToolKind::Monkey, RunMode::TaoptDuration);
    config.instances = instances;
    config.duration = VirtualDuration::from_mins(mins);
    config.tick = VirtualDuration::from_secs(10);
    config.analyzer.find_space.l_min = VirtualDuration::from_secs(45);
    config.analyzer.analysis_interval = VirtualDuration::from_secs(20);
    config.seed = seed;
    config
}

/// Runs one campaign over `app`, optionally warm-started.
fn run_once(
    app: &Arc<App>,
    seed: u64,
    instances: usize,
    mins: u64,
    warm: Option<WarmStart>,
) -> CampaignResult {
    let mut config = session(seed, instances, mins);
    config.capture_warm_start = true;
    config.warm_start = warm.map(Arc::new);
    run_campaign(
        vec![CampaignApp {
            name: "warmprop".into(),
            app: Arc::clone(app),
            config,
        }],
        &CampaignConfig::default(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// An empty diff is a version bump with no observable change; the
    /// accelerator-only warm bundle captured from V0 must not perturb a
    /// single byte of V1's canonical coverage report.
    #[test]
    fn empty_diff_warm_start_is_byte_identical_to_cold(
        seed in 0u64..1_000,
        instances in 2usize..=3,
        mins in 3u64..=5,
    ) {
        let base = Arc::new(
            generate_app(&GeneratorConfig::small("warmprop", seed)).expect("valid app"),
        );
        // V1 = empty diff applied to V0: a re-release of the same binary.
        let next = Arc::new(VersionDiff::empty(0).apply(&base).expect("identity diff"));

        let v0 = run_once(&base, seed, instances, mins, None);
        let bundle = v0.apps[0].warm.clone().expect("TaOPT session captures warm state");

        let cold = run_once(&next, seed, instances, mins, None);
        let warm = run_once(&next, seed, instances, mins, Some(bundle.accelerators_only()));

        prop_assert_eq!(
            cold.coverage_report(),
            warm.coverage_report(),
            "accelerator-only warm start perturbed the campaign (seed {})",
            seed
        );
        // And the warm arm captures its own bundle for the next release.
        prop_assert!(warm.apps[0].warm.is_some());
    }
}
