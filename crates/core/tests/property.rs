//! Property-based tests for TaOPT's core algorithms: FindSpace laws
//! (validity, fast/naive agreement, invariances), metric laws, Theorem-1
//! sampling, and partitioner invariants.

use std::collections::BTreeSet;
use std::sync::Arc;

use proptest::prelude::*;

use taopt::findspace::{
    find_space, find_space_candidates, find_space_naive, FindSpaceConfig, FindSpaceEngine,
    SimilarityCache,
};
use taopt::metrics::curves::{coverage_at, time_to_reach, CurvePoint};
use taopt::metrics::jaccard::{average_jaccard, jaccard};
use taopt::partition::{partition_graph, PartitionConfig};
use taopt::theorem::{required_samples, separation_success_rate, CliquePairConfig};
use taopt_ui_model::abstraction::{AbstractHierarchy, AbstractNode};
use taopt_ui_model::{
    Action, ActionId, ActivityId, ScreenId, StochasticDigraph, TraceEvent, VirtualDuration,
    VirtualTime, WidgetClass,
};

/// Synthesizes a trace event for abstract state `label`.
fn ev(t: u64, label: u32) -> TraceEvent {
    let abstraction = Arc::new(AbstractHierarchy::from_root(AbstractNode {
        class: WidgetClass::FrameLayout,
        resource_id: Some(format!("state-{label}")),
        children: vec![AbstractNode {
            class: WidgetClass::TextView,
            resource_id: Some(format!("body-{label}")),
            children: Vec::new(),
        }],
    }));
    TraceEvent {
        time: VirtualTime::from_secs(t),
        screen: ScreenId(label),
        activity: ActivityId(0),
        abstract_id: abstraction.id(),
        abstraction,
        action: Some(Action::Widget(ActionId(label))),
        action_widget_rid: Some(Arc::from(format!("w{label}"))),
    }
}

/// An arbitrary trace over a small alphabet of abstract states, with
/// strictly increasing timestamps.
fn arb_trace() -> impl Strategy<Value = Vec<TraceEvent>> {
    proptest::collection::vec(0u32..8, 2..150).prop_map(|labels| {
        labels
            .into_iter()
            .enumerate()
            .map(|(i, l)| ev(i as u64 * 3, l))
            .collect()
    })
}

fn fs_config() -> FindSpaceConfig {
    FindSpaceConfig {
        l_min: VirtualDuration::from_secs(30),
        min_prefix_events: 4,
        min_prefix_distinct: 2,
        ..FindSpaceConfig::default()
    }
}

/// An arbitrary trace whose timestamps may repeat (several events in the
/// same virtual instant — e.g. a jump plus its first observation) and
/// whose gaps vary, exercising `l_min` window edges.
fn arb_dup_trace() -> impl Strategy<Value = Vec<TraceEvent>> {
    proptest::collection::vec((0u32..8, 0u64..3), 2..120).prop_map(|steps| {
        let mut t = 0u64;
        steps
            .into_iter()
            .map(|(label, gap)| {
                t += gap; // gap 0 → duplicate timestamp
                ev(t, label)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn findspace_fast_equals_naive(events in arb_trace()) {
        let cfg = fs_config();
        let fast = find_space(&events, &cfg);
        let slow = find_space_naive(&events, &cfg);
        match (fast, slow) {
            (Some(f), Some(s)) => {
                prop_assert_eq!(f.index, s.index);
                prop_assert!((f.score - s.score).abs() < 1e-9);
            }
            (f, s) => prop_assert_eq!(f, s),
        }
    }

    #[test]
    fn findspace_split_index_is_valid(events in arb_trace()) {
        let cfg = fs_config();
        if let Some(split) = find_space(&events, &cfg) {
            prop_assert!(split.index >= cfg.min_prefix_events);
            prop_assert!(split.index < events.len());
            prop_assert!(split.score < cfg.max_score);
            // l_min guarantee: at least l_min of trace remains after the
            // split.
            let remaining = events[events.len() - 1].time.since(events[split.index].time);
            prop_assert!(remaining >= VirtualDuration::ZERO);
        }
    }

    #[test]
    fn findspace_fast_equals_naive_with_duplicate_timestamps(
        events in arb_dup_trace(),
        l_min_secs in 0u64..80,
    ) {
        // The incremental and naive scorers must agree on degenerate
        // clocks too: repeated timestamps, zero-length windows, and
        // l_min anywhere from 0 (every suffix admissible) past the whole
        // trace span (no suffix admissible).
        let mut cfg = fs_config();
        cfg.l_min = VirtualDuration::from_secs(l_min_secs);
        let fast = find_space(&events, &cfg);
        let slow = find_space_naive(&events, &cfg);
        match (fast, slow) {
            (Some(f), Some(s)) => {
                prop_assert_eq!(f.index, s.index);
                prop_assert!((f.score - s.score).abs() < 1e-9);
            }
            (f, s) => prop_assert_eq!(f, s),
        }
    }

    #[test]
    fn findspace_engine_incremental_equals_rescan_at_every_step(
        events in arb_dup_trace(),
        chunk in 1usize..=17,
        l_min_secs in 0u64..80,
    ) {
        // Feeding the trace to the persistent engine in arbitrary chunk
        // sizes must reproduce the full-rescan reference *bit-identically*
        // on every prefix — same indices, same score bits — including
        // under duplicate timestamps and degenerate l_min windows.
        let mut cfg = fs_config();
        cfg.l_min = VirtualDuration::from_secs(l_min_secs);
        let mut engine = FindSpaceEngine::new(cfg.clone());
        let engine_cache = SimilarityCache::new();
        let rescan_cache = SimilarityCache::new();
        let mut end = 0usize;
        while end < events.len() {
            end = (end + chunk).min(events.len());
            engine.extend_from(&events[..end], &engine_cache);
            prop_assert_eq!(engine.len(), end);
            let inc = engine.analyze(5);
            let full = find_space_candidates(&events[..end], &cfg, &rescan_cache, 5);
            prop_assert_eq!(inc.len(), full.len());
            for (a, b) in inc.iter().zip(&full) {
                prop_assert_eq!(a.index, b.index);
                prop_assert_eq!(a.score.to_bits(), b.score.to_bits());
            }
        }
    }

    #[test]
    fn findspace_engine_reset_matches_fresh_engine(
        events in arb_dup_trace(),
        rebase_num in 0usize..100,
    ) {
        // Simulated re-dedication: after an accepted split (or a device
        // replacement) the analysis window rebases, the engine resets and
        // is re-fed the new window. That must be indistinguishable from a
        // brand-new engine — and from the rescan reference.
        let cfg = fs_config();
        let rebase = rebase_num * events.len().saturating_sub(1) / 100;
        let cache = SimilarityCache::new();
        let mut reused = FindSpaceEngine::new(cfg.clone());
        reused.extend_from(&events, &cache);
        let _ = reused.analyze(5);
        reused.reset();
        prop_assert!(reused.is_empty());
        reused.extend_from(&events[rebase..], &cache);
        let mut fresh = FindSpaceEngine::new(cfg.clone());
        fresh.extend_from(&events[rebase..], &SimilarityCache::new());
        let a = reused.analyze(5);
        let b = fresh.analyze(5);
        let c = find_space_candidates(
            &events[rebase..],
            &cfg,
            &SimilarityCache::new(),
            5,
        );
        prop_assert_eq!(a.len(), b.len());
        prop_assert_eq!(a.len(), c.len());
        for ((x, y), z) in a.iter().zip(&b).zip(&c) {
            prop_assert_eq!(x.index, y.index);
            prop_assert_eq!(x.index, z.index);
            prop_assert_eq!(x.score.to_bits(), y.score.to_bits());
            prop_assert_eq!(x.score.to_bits(), z.score.to_bits());
        }
    }

    #[test]
    fn findspace_split_is_valid_with_duplicate_timestamps(events in arb_dup_trace()) {
        let cfg = fs_config();
        if let Some(split) = find_space(&events, &cfg) {
            prop_assert!(split.index >= cfg.min_prefix_events);
            prop_assert!(split.index < events.len());
            prop_assert!(split.score < cfg.max_score);
        }
    }

    #[test]
    fn findspace_is_invariant_under_label_permutation(
        events in arb_trace(),
        offset in 1u32..50
    ) {
        // Renaming abstract states (consistently) must not change the
        // split index: the algorithm sees only identities and similarity.
        let cfg = fs_config();
        let renamed: Vec<TraceEvent> = events
            .iter()
            .enumerate()
            .map(|(i, e)| ev(i as u64 * 3, e.screen.0 + offset * 100))
            .collect();
        let a = find_space(&events, &cfg).map(|s| s.index);
        let b = find_space(&renamed, &cfg).map(|s| s.index);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn jaccard_laws(
        a in proptest::collection::btree_set(0u32..64, 0..40),
        b in proptest::collection::btree_set(0u32..64, 0..40),
        c in proptest::collection::btree_set(0u32..64, 0..40),
    ) {
        let j = jaccard(&a, &b);
        prop_assert!((0.0..=1.0).contains(&j));
        prop_assert!((j - jaccard(&b, &a)).abs() < 1e-12);
        prop_assert_eq!(jaccard(&a, &a), 1.0);
        let ajs = average_jaccard(&[a.clone(), b.clone(), c.clone()]);
        prop_assert!((0.0..=1.0).contains(&ajs));
    }

    #[test]
    fn curve_lookups_are_monotone(
        counts in proptest::collection::vec(1usize..50, 1..40)
    ) {
        // Build a monotone curve from random increments.
        let mut covered = 0;
        let curve: Vec<CurvePoint> = counts
            .iter()
            .enumerate()
            .map(|(i, c)| {
                covered += c;
                CurvePoint {
                    time: VirtualTime::from_secs(10 * (i as u64 + 1)),
                    covered,
                    machine_time: VirtualDuration::from_secs(10 * (i as u64 + 1)),
                }
            })
            .collect();
        let mut prev = 0;
        for t in (0..=curve.len() as u64 * 10 + 10).step_by(5) {
            let at = coverage_at(&curve, VirtualTime::from_secs(t));
            prop_assert!(at >= prev);
            prev = at;
        }
        // time_to_reach is consistent with coverage_at.
        if let Some(t) = time_to_reach(&curve, covered) {
            prop_assert_eq!(coverage_at(&curve, t), covered);
        }
        prop_assert_eq!(time_to_reach(&curve, covered + 1), None);
    }

    #[test]
    fn partition_is_a_disjoint_family(
        edges in proptest::collection::vec((0u64..16, 0u64..16, 0.05f64..1.0), 4..80)
    ) {
        let mut g = StochasticDigraph::new();
        for (a, b, w) in &edges {
            if a != b {
                g.add_edge(*a, *b, *w).unwrap();
            }
        }
        let g = g.normalized();
        let clusters = partition_graph(&g, &PartitionConfig::default());
        // Disjoint and drawn from the node set.
        let nodes: BTreeSet<u64> = g.nodes().collect();
        let mut seen = BTreeSet::new();
        for c in &clusters {
            for n in c {
                prop_assert!(nodes.contains(n));
                prop_assert!(seen.insert(*n), "node {n} in two clusters");
            }
        }
    }
}

/// Statistical validation of Theorem 1 at the proven sample complexity.
/// Not a proptest: the randomness is the subject under test.
#[test]
fn theorem1_separation_succeeds_at_prescribed_samples() {
    for n in [6usize, 10] {
        let cfg = CliquePairConfig { n, alpha: 16.0 };
        let samples = required_samples(n, 24.0);
        let rate = separation_success_rate(&cfg, samples, 15, 99);
        assert!(rate >= 0.85, "n={n}: success rate {rate} below 0.85");
    }
}

#[test]
fn theorem1_separation_fails_when_starved() {
    let cfg = CliquePairConfig { n: 12, alpha: 16.0 };
    let rate = separation_success_rate(&cfg, 40, 15, 5);
    assert!(rate <= 0.5, "starved rate {rate} too high");
}

mod campaign_props {
    use std::sync::Arc;

    use proptest::prelude::*;

    use taopt::campaign::{run_campaign, CampaignApp, CampaignConfig, KillEvent};
    use taopt::session::{RunMode, SessionConfig};
    use taopt_app_sim::{generate_app, GeneratorConfig};
    use taopt_tools::ToolKind;
    use taopt_ui_model::VirtualDuration;

    /// A tiny campaign: `n` two-instance apps with short sessions, so a
    /// proptest case finishes in milliseconds of host time.
    pub fn tiny_apps(n: usize, seed: u64) -> Vec<CampaignApp> {
        (0..n)
            .map(|i| {
                let mode = if i % 3 == 2 {
                    RunMode::TaoptResource
                } else {
                    RunMode::TaoptDuration
                };
                let tool = if i % 2 == 0 {
                    ToolKind::Monkey
                } else {
                    ToolKind::Ape
                };
                let mut config = SessionConfig::new(tool, mode);
                config.instances = 2;
                config.duration = VirtualDuration::from_mins(3);
                config.tick = VirtualDuration::from_secs(10);
                config.stall_timeout = VirtualDuration::from_secs(60);
                config.seed = seed.wrapping_add(i as u64);
                config.analyzer.find_space.l_min = VirtualDuration::from_secs(45);
                config.analyzer.analysis_interval = VirtualDuration::from_secs(20);
                if mode == RunMode::TaoptResource {
                    config.machine_budget = Some(VirtualDuration::from_mins(4));
                }
                let name = format!("p{i}");
                CampaignApp {
                    app: Arc::new(
                        generate_app(&GeneratorConfig::small(&name, seed ^ (i as u64 + 1)))
                            .unwrap(),
                    ),
                    name,
                    config,
                }
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn no_starvation_dmax_and_termination_under_lease_churn(
            n_apps in 2usize..5,
            capacity in 1usize..4,
            workers in 1usize..4,
            seed in 0u64..1_000,
        ) {
            // Even with fewer devices than apps the rotating fair lease +
            // starvation revocation must run every session to completion.
            let config = CampaignConfig {
                workers,
                capacity: Some(capacity),
                ..CampaignConfig::default()
            };
            let result = run_campaign(tiny_apps(n_apps, seed), &config);
            prop_assert!(result.rounds < 10_000, "campaign failed to converge");
            prop_assert_eq!(result.lease_conflicts, 0);
            prop_assert!(result.peak_active <= capacity);
            prop_assert_eq!(result.farm_active_at_end, 0);
            for app in &result.apps {
                // No starvation: every app eventually held ≥ 1 device and
                // ran its whole session.
                prop_assert!(
                    !app.session.instances.is_empty(),
                    "{} never received a device",
                    app.name
                );
                prop_assert!(
                    app.session.union_coverage() > 0,
                    "{} held devices but covered nothing",
                    app.name
                );
                // d_max never exceeded.
                prop_assert!(
                    app.session.peak_concurrency() <= 2,
                    "{} exceeded its d_max",
                    app.name
                );
            }
        }

        #[test]
        fn killing_devices_leaves_no_orphaned_subspaces(
            n_apps in 2usize..4,
            kills in proptest::collection::vec((2u64..15, 0u64..8), 1..3),
            seed in 0u64..1_000,
        ) {
            // k < devices kills mid-campaign: replacements restore the
            // fleet and orphan repair re-homes every confirmed subspace.
            let config = CampaignConfig {
                workers: 2,
                kills: kills
                    .iter()
                    .map(|&(round, victim)| KillEvent { round, victim })
                    .collect(),
                ..CampaignConfig::default()
            };
            let result = run_campaign(tiny_apps(n_apps, seed), &config);
            prop_assert!(result.rounds < 10_000);
            let lost: usize = result.apps.iter().map(|a| a.devices_lost).sum();
            prop_assert!(lost <= kills.len());
            for app in &result.apps {
                prop_assert_eq!(
                    app.unresolved_orphans,
                    0,
                    "{} finished with orphaned subspaces after {} kills",
                    app.name,
                    lost
                );
                prop_assert!(!app.session.instances.is_empty());
            }
        }
    }
}

mod chaos_campaign_props {
    use proptest::prelude::*;

    use taopt::campaign::{run_campaign, CampaignConfig};
    use taopt_chaos::{FaultPlan, FaultRates};

    use super::campaign_props::tiny_apps;

    /// Moderate random rates: low enough that campaigns stay productive,
    /// high enough that every seam fires across a test run.
    fn arb_rates() -> impl Strategy<Value = FaultRates> {
        (
            0.0f64..0.05,
            0.0f64..0.10,
            0.0f64..0.05,
            0.0f64..0.05,
            0.0f64..0.05,
            0.0f64..0.05,
            0.0f64..0.30,
        )
            .prop_map(|(loss, refusal, spike, drop, dup, delay, enf)| {
                let mut r = FaultRates::none();
                r.device_loss = loss;
                r.alloc_refusal = refusal;
                r.latency_spike = spike;
                r.event_drop = drop;
                r.event_duplicate = dup;
                r.event_delay = delay;
                r.enforcement_failure = enf;
                r
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        #[test]
        fn chaos_campaigns_terminate_and_heal_for_any_worker_count(
            n_apps in 2usize..4,
            plan_seed in 0u64..1_000,
            seed in 0u64..1_000,
            rates in arb_rates(),
        ) {
            // One fault plan, three worker counts: every run must
            // terminate, respect each app's d_max and the farm capacity,
            // leave no orphaned subspace, and — the determinism pin —
            // produce byte-identical coverage reports and identical fault
            // statistics regardless of parallelism.
            let plan = FaultPlan::new(plan_seed, rates);
            let mut reports = Vec::new();
            let mut stats = Vec::new();
            for workers in [1usize, 2, 4] {
                let config = CampaignConfig {
                    workers,
                    faults: Some(plan.clone()),
                    ..CampaignConfig::default()
                };
                let result = run_campaign(tiny_apps(n_apps, seed), &config);
                prop_assert!(result.rounds < 10_000, "chaos campaign failed to converge");
                prop_assert_eq!(result.lease_conflicts, 0);
                prop_assert!(result.peak_active <= result.capacity);
                prop_assert_eq!(result.farm_active_at_end, 0);
                for app in &result.apps {
                    prop_assert!(
                        app.session.peak_concurrency() <= 2,
                        "{} exceeded its d_max under faults",
                        app.name
                    );
                    prop_assert_eq!(
                        app.unresolved_orphans,
                        0,
                        "{} finished with orphaned subspaces",
                        app.name
                    );
                }
                reports.push(result.coverage_report());
                stats.push(result.fault_stats.clone().expect("fault plan was set"));
            }
            prop_assert_eq!(&reports[0], &reports[1], "1 vs 2 workers diverged");
            prop_assert_eq!(&reports[0], &reports[2], "1 vs 4 workers diverged");
            prop_assert_eq!(&stats[0], &stats[1], "fault stats diverged at 2 workers");
            prop_assert_eq!(&stats[0], &stats[2], "fault stats diverged at 4 workers");
        }

        #[test]
        fn an_inert_fault_plan_is_byte_equivalent_to_no_plan(
            n_apps in 2usize..4,
            seed in 0u64..1_000,
            workers in 1usize..4,
        ) {
            // Campaign-level inert parity: wiring the chaos layers with a
            // zero-rate plan must not perturb a single byte of the
            // deterministic coverage report.
            let plain = run_campaign(
                tiny_apps(n_apps, seed),
                &CampaignConfig { workers, ..CampaignConfig::default() },
            );
            let inert = run_campaign(
                tiny_apps(n_apps, seed),
                &CampaignConfig {
                    workers,
                    faults: Some(FaultPlan::new(seed, FaultRates::none())),
                    ..CampaignConfig::default()
                },
            );
            prop_assert_eq!(plain.coverage_report(), inert.coverage_report());
            let stats = inert.fault_stats.expect("fault plan was set");
            prop_assert_eq!(stats.total_injected(), 0);
        }
    }
}

mod coordinator_fuzz {
    use std::collections::{BTreeMap, BTreeSet};

    use proptest::prelude::*;

    use taopt::analyzer::AnalyzerConfig;
    use taopt::coordinator::TestCoordinator;
    use taopt_toller::enforce::{shared_block_list, EntrypointRule, SharedBlockList};
    use taopt_toller::InstanceId;
    use taopt_ui_model::{AbstractScreenId, VirtualTime};

    /// One fuzzed coordinator operation.
    #[derive(Debug, Clone)]
    enum Op {
        Register(u32),
        Unregister(u32),
        Report { instance: u32, cluster: u64 },
    }

    fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
        proptest::collection::vec(
            prop_oneof![
                (0u32..6).prop_map(Op::Register),
                (0u32..6).prop_map(Op::Unregister),
                ((0u32..6), (0u64..5))
                    .prop_map(|(instance, cluster)| Op::Report { instance, cluster }),
            ],
            1..60,
        )
    }

    /// Disjoint screen sets per cluster id, so reports for the same
    /// cluster merge and reports for different clusters do not.
    fn screens_of(cluster: u64) -> BTreeSet<AbstractScreenId> {
        (0..8u64)
            .map(|i| AbstractScreenId(cluster * 100 + i))
            .collect()
    }

    fn rule_of(cluster: u64) -> EntrypointRule {
        EntrypointRule::new(AbstractScreenId(9_000), format!("tab_{cluster}"))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn coordinator_invariants_hold_under_fuzzing(ops in arb_ops()) {
            let mut c = TestCoordinator::new(AnalyzerConfig::resource_mode());
            let mut lists: BTreeMap<InstanceId, SharedBlockList> = BTreeMap::new();
            let mut confirmed_before = 0usize;
            for (step, op) in ops.into_iter().enumerate() {
                let now = VirtualTime::from_secs(step as u64);
                match op {
                    Op::Register(i) => {
                        let iid = InstanceId(i);
                        if let std::collections::btree_map::Entry::Vacant(e) = lists.entry(iid) {
                            let bl = shared_block_list();
                            c.register_instance(iid, bl.clone());
                            e.insert(bl);
                        }
                    }
                    Op::Unregister(i) => {
                        let iid = InstanceId(i);
                        if lists.remove(&iid).is_some() {
                            c.unregister_instance(iid);
                        }
                    }
                    Op::Report { instance, cluster } => {
                        let iid = InstanceId(instance);
                        if lists.contains_key(&iid) {
                            c.register_report(
                                iid,
                                rule_of(cluster),
                                screens_of(cluster),
                                now,
                            )
                            .expect("reported subspace is always known");
                        }
                    }
                }
                // Invariant 1: confirmed subspaces never un-confirm.
                let confirmed = c.analyzer().confirmed().count();
                prop_assert!(confirmed >= confirmed_before);
                confirmed_before = confirmed;
                // Invariant 2: a *registered* owner is never blocked from
                // its own subspace's entrypoints.
                for s in c.analyzer().confirmed() {
                    if let Some(owner) = s.owner {
                        if let Some(bl) = lists.get(&owner) {
                            let bl = bl.read();
                            for rule in &s.entrypoints {
                                prop_assert!(
                                    !bl.rules().contains(rule),
                                    "owner {owner} blocked from own {}",
                                    s.id
                                );
                            }
                        }
                    }
                }
                // Invariant 3: every confirmed subspace with a registered
                // owner has all its entrypoints blocked on every *other*
                // registered instance.
                for s in c.analyzer().confirmed() {
                    let Some(owner) = s.owner else { continue };
                    if !lists.contains_key(&owner) {
                        continue; // tombstoned/orphaned
                    }
                    for (iid, bl) in &lists {
                        if *iid == owner {
                            continue;
                        }
                        let bl = bl.read();
                        for rule in &s.entrypoints {
                            prop_assert!(
                                bl.rules().contains(rule),
                                "{iid} not blocked from {} owned by {owner}",
                                s.id
                            );
                        }
                    }
                }
            }
        }
    }
}
