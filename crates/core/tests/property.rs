//! Property-based tests for TaOPT's core algorithms: FindSpace laws
//! (validity, fast/naive agreement, invariances), metric laws, Theorem-1
//! sampling, and partitioner invariants.

use std::collections::BTreeSet;
use std::sync::Arc;

use proptest::prelude::*;

use taopt::findspace::{find_space, find_space_naive, FindSpaceConfig};
use taopt::metrics::curves::{coverage_at, time_to_reach, CurvePoint};
use taopt::metrics::jaccard::{average_jaccard, jaccard};
use taopt::partition::{partition_graph, PartitionConfig};
use taopt::theorem::{required_samples, separation_success_rate, CliquePairConfig};
use taopt_ui_model::abstraction::{AbstractHierarchy, AbstractNode};
use taopt_ui_model::{
    Action, ActionId, ActivityId, ScreenId, StochasticDigraph, TraceEvent, VirtualDuration,
    VirtualTime, WidgetClass,
};

/// Synthesizes a trace event for abstract state `label`.
fn ev(t: u64, label: u32) -> TraceEvent {
    let abstraction = Arc::new(AbstractHierarchy::from_root(AbstractNode {
        class: WidgetClass::FrameLayout,
        resource_id: Some(format!("state-{label}")),
        children: vec![AbstractNode {
            class: WidgetClass::TextView,
            resource_id: Some(format!("body-{label}")),
            children: Vec::new(),
        }],
    }));
    TraceEvent {
        time: VirtualTime::from_secs(t),
        screen: ScreenId(label),
        activity: ActivityId(0),
        abstract_id: abstraction.id(),
        abstraction,
        action: Some(Action::Widget(ActionId(label))),
        action_widget_rid: Some(format!("w{label}")),
    }
}

/// An arbitrary trace over a small alphabet of abstract states, with
/// strictly increasing timestamps.
fn arb_trace() -> impl Strategy<Value = Vec<TraceEvent>> {
    proptest::collection::vec(0u32..8, 2..150).prop_map(|labels| {
        labels
            .into_iter()
            .enumerate()
            .map(|(i, l)| ev(i as u64 * 3, l))
            .collect()
    })
}

fn fs_config() -> FindSpaceConfig {
    FindSpaceConfig {
        l_min: VirtualDuration::from_secs(30),
        min_prefix_events: 4,
        min_prefix_distinct: 2,
        ..FindSpaceConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn findspace_fast_equals_naive(events in arb_trace()) {
        let cfg = fs_config();
        let fast = find_space(&events, &cfg);
        let slow = find_space_naive(&events, &cfg);
        match (fast, slow) {
            (Some(f), Some(s)) => {
                prop_assert_eq!(f.index, s.index);
                prop_assert!((f.score - s.score).abs() < 1e-9);
            }
            (f, s) => prop_assert_eq!(f, s),
        }
    }

    #[test]
    fn findspace_split_index_is_valid(events in arb_trace()) {
        let cfg = fs_config();
        if let Some(split) = find_space(&events, &cfg) {
            prop_assert!(split.index >= cfg.min_prefix_events);
            prop_assert!(split.index < events.len());
            prop_assert!(split.score < cfg.max_score);
            // l_min guarantee: at least l_min of trace remains after the
            // split.
            let remaining = events[events.len() - 1].time.since(events[split.index].time);
            prop_assert!(remaining >= VirtualDuration::ZERO);
        }
    }

    #[test]
    fn findspace_is_invariant_under_label_permutation(
        events in arb_trace(),
        offset in 1u32..50
    ) {
        // Renaming abstract states (consistently) must not change the
        // split index: the algorithm sees only identities and similarity.
        let cfg = fs_config();
        let renamed: Vec<TraceEvent> = events
            .iter()
            .enumerate()
            .map(|(i, e)| ev(i as u64 * 3, e.screen.0 + offset * 100))
            .collect();
        let a = find_space(&events, &cfg).map(|s| s.index);
        let b = find_space(&renamed, &cfg).map(|s| s.index);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn jaccard_laws(
        a in proptest::collection::btree_set(0u32..64, 0..40),
        b in proptest::collection::btree_set(0u32..64, 0..40),
        c in proptest::collection::btree_set(0u32..64, 0..40),
    ) {
        let j = jaccard(&a, &b);
        prop_assert!((0.0..=1.0).contains(&j));
        prop_assert!((j - jaccard(&b, &a)).abs() < 1e-12);
        prop_assert_eq!(jaccard(&a, &a), 1.0);
        let ajs = average_jaccard(&[a.clone(), b.clone(), c.clone()]);
        prop_assert!((0.0..=1.0).contains(&ajs));
    }

    #[test]
    fn curve_lookups_are_monotone(
        counts in proptest::collection::vec(1usize..50, 1..40)
    ) {
        // Build a monotone curve from random increments.
        let mut covered = 0;
        let curve: Vec<CurvePoint> = counts
            .iter()
            .enumerate()
            .map(|(i, c)| {
                covered += c;
                CurvePoint {
                    time: VirtualTime::from_secs(10 * (i as u64 + 1)),
                    covered,
                    machine_time: VirtualDuration::from_secs(10 * (i as u64 + 1)),
                }
            })
            .collect();
        let mut prev = 0;
        for t in (0..=curve.len() as u64 * 10 + 10).step_by(5) {
            let at = coverage_at(&curve, VirtualTime::from_secs(t));
            prop_assert!(at >= prev);
            prev = at;
        }
        // time_to_reach is consistent with coverage_at.
        if let Some(t) = time_to_reach(&curve, covered) {
            prop_assert_eq!(coverage_at(&curve, t), covered);
        }
        prop_assert_eq!(time_to_reach(&curve, covered + 1), None);
    }

    #[test]
    fn partition_is_a_disjoint_family(
        edges in proptest::collection::vec((0u64..16, 0u64..16, 0.05f64..1.0), 4..80)
    ) {
        let mut g = StochasticDigraph::new();
        for (a, b, w) in &edges {
            if a != b {
                g.add_edge(*a, *b, *w).unwrap();
            }
        }
        let g = g.normalized();
        let clusters = partition_graph(&g, &PartitionConfig::default());
        // Disjoint and drawn from the node set.
        let nodes: BTreeSet<u64> = g.nodes().collect();
        let mut seen = BTreeSet::new();
        for c in &clusters {
            for n in c {
                prop_assert!(nodes.contains(n));
                prop_assert!(seen.insert(*n), "node {n} in two clusters");
            }
        }
    }
}

/// Statistical validation of Theorem 1 at the proven sample complexity.
/// Not a proptest: the randomness is the subject under test.
#[test]
fn theorem1_separation_succeeds_at_prescribed_samples() {
    for n in [6usize, 10] {
        let cfg = CliquePairConfig { n, alpha: 16.0 };
        let samples = required_samples(n, 24.0);
        let rate = separation_success_rate(&cfg, samples, 15, 99);
        assert!(rate >= 0.85, "n={n}: success rate {rate} below 0.85");
    }
}

#[test]
fn theorem1_separation_fails_when_starved() {
    let cfg = CliquePairConfig { n: 12, alpha: 16.0 };
    let rate = separation_success_rate(&cfg, 40, 15, 5);
    assert!(rate <= 0.5, "starved rate {rate} too high");
}

mod coordinator_fuzz {
    use std::collections::{BTreeMap, BTreeSet};

    use proptest::prelude::*;

    use taopt::analyzer::AnalyzerConfig;
    use taopt::coordinator::TestCoordinator;
    use taopt_toller::enforce::{shared_block_list, EntrypointRule, SharedBlockList};
    use taopt_toller::InstanceId;
    use taopt_ui_model::{AbstractScreenId, VirtualTime};

    /// One fuzzed coordinator operation.
    #[derive(Debug, Clone)]
    enum Op {
        Register(u32),
        Unregister(u32),
        Report { instance: u32, cluster: u64 },
    }

    fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
        proptest::collection::vec(
            prop_oneof![
                (0u32..6).prop_map(Op::Register),
                (0u32..6).prop_map(Op::Unregister),
                ((0u32..6), (0u64..5))
                    .prop_map(|(instance, cluster)| Op::Report { instance, cluster }),
            ],
            1..60,
        )
    }

    /// Disjoint screen sets per cluster id, so reports for the same
    /// cluster merge and reports for different clusters do not.
    fn screens_of(cluster: u64) -> BTreeSet<AbstractScreenId> {
        (0..8u64)
            .map(|i| AbstractScreenId(cluster * 100 + i))
            .collect()
    }

    fn rule_of(cluster: u64) -> EntrypointRule {
        EntrypointRule::new(AbstractScreenId(9_000), format!("tab_{cluster}"))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn coordinator_invariants_hold_under_fuzzing(ops in arb_ops()) {
            let mut c = TestCoordinator::new(AnalyzerConfig::resource_mode());
            let mut lists: BTreeMap<InstanceId, SharedBlockList> = BTreeMap::new();
            let mut confirmed_before = 0usize;
            for (step, op) in ops.into_iter().enumerate() {
                let now = VirtualTime::from_secs(step as u64);
                match op {
                    Op::Register(i) => {
                        let iid = InstanceId(i);
                        if let std::collections::btree_map::Entry::Vacant(e) = lists.entry(iid) {
                            let bl = shared_block_list();
                            c.register_instance(iid, bl.clone());
                            e.insert(bl);
                        }
                    }
                    Op::Unregister(i) => {
                        let iid = InstanceId(i);
                        if lists.remove(&iid).is_some() {
                            c.unregister_instance(iid);
                        }
                    }
                    Op::Report { instance, cluster } => {
                        let iid = InstanceId(instance);
                        if lists.contains_key(&iid) {
                            c.register_report(
                                iid,
                                rule_of(cluster),
                                screens_of(cluster),
                                now,
                            )
                            .expect("reported subspace is always known");
                        }
                    }
                }
                // Invariant 1: confirmed subspaces never un-confirm.
                let confirmed = c.analyzer().confirmed().count();
                prop_assert!(confirmed >= confirmed_before);
                confirmed_before = confirmed;
                // Invariant 2: a *registered* owner is never blocked from
                // its own subspace's entrypoints.
                for s in c.analyzer().confirmed() {
                    if let Some(owner) = s.owner {
                        if let Some(bl) = lists.get(&owner) {
                            let bl = bl.read();
                            for rule in &s.entrypoints {
                                prop_assert!(
                                    !bl.rules().contains(rule),
                                    "owner {owner} blocked from own {}",
                                    s.id
                                );
                            }
                        }
                    }
                }
                // Invariant 3: every confirmed subspace with a registered
                // owner has all its entrypoints blocked on every *other*
                // registered instance.
                for s in c.analyzer().confirmed() {
                    let Some(owner) = s.owner else { continue };
                    if !lists.contains_key(&owner) {
                        continue; // tombstoned/orphaned
                    }
                    for (iid, bl) in &lists {
                        if *iid == owner {
                            continue;
                        }
                        let bl = bl.read();
                        for rule in &s.entrypoints {
                            prop_assert!(
                                bl.rules().contains(rule),
                                "{iid} not blocked from {} owned by {owner}",
                                s.id
                            );
                        }
                    }
                }
            }
        }
    }
}
