//! Differential equivalence suite for the parallel hot paths.
//!
//! The analysis layer's parallel machinery — the sharded
//! [`SimilarityCache`], the lane-vectorized FindSpace sweep, and batched
//! per-round ingestion — all promise the same thing: **bit-identical**
//! output to the serial reference at any shard count, lane width, or
//! worker count. Each suite here pins one of those promises over random
//! traces with duplicate timestamps, in the style of the
//! `findspace_engine_*` proptests:
//!
//! 1. `sharded_cache_*`: engines fed through caches of every shard
//!    count agree with the 1-shard reference — candidates and merged
//!    cache post-state both;
//! 2. `vectorized_sweep_*`: `analyze_with_lanes` at every width agrees
//!    with `analyze_reference` and the full-rescan reference;
//! 3. `batched_ingestion_*`: `ingest_round` (at 1 and several analysis
//!    workers) agrees with one-at-a-time `maybe_analyze` calls — same
//!    confirmations per round, same final registry, same cache content;
//! 4. `pooled_ingestion_*`: `ingest_round` through a persistent
//!    [`ComputePool`] of any budget agrees with both the serial loop
//!    and the legacy scoped-thread path — the pool is pure mechanism.
//!
//! Plus the concurrency stress test (8 threads hammering one sharded
//! cache) and the `forget_instance` occupancy test.

use std::collections::BTreeSet;
use std::sync::Arc;

use proptest::prelude::*;

use taopt::analyzer::{AnalyzerConfig, OnlineTraceAnalyzer};
use taopt::findspace::{find_space_candidates, FindSpaceConfig, FindSpaceEngine, SimilarityCache};
use taopt::ComputePool;
use taopt_toller::InstanceId;
use taopt_ui_model::abstraction::{AbstractHierarchy, AbstractNode};
use taopt_ui_model::{
    Action, ActionId, ActivityId, ScreenId, Trace, TraceEvent, VirtualDuration, VirtualTime,
    WidgetClass,
};

/// Synthesizes a trace event for abstract state `label`.
fn ev(t: u64, label: u32) -> TraceEvent {
    let abstraction = Arc::new(AbstractHierarchy::from_root(AbstractNode {
        class: WidgetClass::FrameLayout,
        resource_id: Some(format!("state-{label}")),
        children: vec![AbstractNode {
            class: WidgetClass::TextView,
            resource_id: Some(format!("body-{label}")),
            children: Vec::new(),
        }],
    }));
    TraceEvent {
        time: VirtualTime::from_secs(t),
        screen: ScreenId(label),
        activity: ActivityId(0),
        abstract_id: abstraction.id(),
        abstraction,
        action: Some(Action::Widget(ActionId(label))),
        action_widget_rid: Some(Arc::from(format!("w{label}"))),
    }
}

/// An arbitrary trace whose timestamps may repeat (several events in
/// the same virtual instant) and whose gaps vary, exercising `l_min`
/// window edges — the same shape as `property.rs`'s `arb_dup_trace`.
fn arb_dup_trace() -> impl Strategy<Value = Vec<TraceEvent>> {
    proptest::collection::vec((0u32..8, 0u64..3), 2..120).prop_map(|steps| {
        let mut t = 0u64;
        steps
            .into_iter()
            .map(|(label, gap)| {
                t += gap; // gap 0 → duplicate timestamp
                ev(t, label)
            })
            .collect()
    })
}

/// Up to three instance traces over one shared screen alphabet, so the
/// similarity cache is genuinely shared across instances.
fn arb_instance_traces() -> impl Strategy<Value = Vec<Vec<TraceEvent>>> {
    proptest::collection::vec(arb_dup_trace(), 1..4)
}

fn fs_config() -> FindSpaceConfig {
    FindSpaceConfig {
        l_min: VirtualDuration::from_secs(30),
        min_prefix_events: 4,
        min_prefix_distinct: 2,
        ..FindSpaceConfig::default()
    }
}

fn analyzer_config(workers: usize) -> AnalyzerConfig {
    let mut c = AnalyzerConfig::resource_mode();
    c.find_space = fs_config();
    c.analysis_interval = VirtualDuration::from_secs(10);
    c.min_new_events = 5;
    c.min_subspace_screens = 2;
    c.analysis_workers = workers;
    // Every batch in these suites is small; drop the pool routing
    // threshold so the pooled arm genuinely exercises the pool.
    c.pool_min_window = 0;
    c
}

/// Bitwise candidate-list equality.
macro_rules! prop_assert_identical {
    ($a:expr, $b:expr, $ctx:expr) => {{
        let (a, b) = (&$a, &$b);
        prop_assert_eq!(a.len(), b.len(), "candidate count diverged at {}", $ctx);
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert_eq!(x.index, y.index, "index diverged at {}", $ctx);
            prop_assert_eq!(
                x.score.to_bits(),
                y.score.to_bits(),
                "score bits diverged at {}",
                $ctx
            );
        }
    }};
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Suite 1: sharded cache ≡ unsharded. An engine run through a
    /// cache of any shard count returns the same candidate bits as one
    /// run through the 1-shard reference, and the merged cache contents
    /// (shard layout erased by the ordered snapshot) are identical.
    #[test]
    fn sharded_cache_equivalent_to_unsharded(
        events in arb_dup_trace(),
        chunk in 1usize..=17,
        l_min_secs in 0u64..80,
    ) {
        let mut cfg = fs_config();
        cfg.l_min = VirtualDuration::from_secs(l_min_secs);
        let reference_cache = SimilarityCache::with_shards(1);
        let mut reference = FindSpaceEngine::new(cfg.clone());
        let mut reference_out = Vec::new();
        let mut end = 0usize;
        while end < events.len() {
            end = (end + chunk).min(events.len());
            reference.extend_from(&events[..end], &reference_cache);
            reference_out.push(reference.analyze(5));
        }
        for shards in [2usize, 4, 8, 16] {
            let cache = SimilarityCache::with_shards(shards);
            prop_assert_eq!(cache.shard_count(), shards);
            let mut engine = FindSpaceEngine::new(cfg.clone());
            let mut end = 0usize;
            let mut step = 0usize;
            while end < events.len() {
                end = (end + chunk).min(events.len());
                engine.extend_from(&events[..end], &cache);
                prop_assert_identical!(
                    engine.analyze(5),
                    reference_out[step],
                    format_args!("shards {shards} prefix {end}")
                );
                step += 1;
            }
            prop_assert_eq!(
                cache.snapshot(),
                reference_cache.snapshot(),
                "cache content diverged at {} shards",
                shards
            );
            prop_assert_eq!(cache.len(), reference_cache.len());
        }
    }

    /// Suite 2: vectorized kernel ≡ scalar. The lane sweep at every
    /// width matches the verbatim scalar loop (`analyze_reference`) and
    /// the full-rescan reference, bit for bit, on every prefix.
    #[test]
    fn vectorized_sweep_equivalent_to_scalar(
        events in arb_dup_trace(),
        chunk in 1usize..=17,
        l_min_secs in 0u64..80,
    ) {
        let mut cfg = fs_config();
        cfg.l_min = VirtualDuration::from_secs(l_min_secs);
        let cache = SimilarityCache::new();
        let rescan_cache = SimilarityCache::new();
        let mut scalar = FindSpaceEngine::new(cfg.clone());
        let mut laned: Vec<(usize, FindSpaceEngine)> = [1usize, 2, 3, 4, 8, 16]
            .into_iter()
            .map(|w| (w, FindSpaceEngine::new(cfg.clone())))
            .collect();
        let mut end = 0usize;
        while end < events.len() {
            end = (end + chunk).min(events.len());
            scalar.extend_from(&events[..end], &cache);
            let anchor = scalar.analyze_reference(5);
            prop_assert_identical!(
                anchor,
                find_space_candidates(&events[..end], &cfg, &rescan_cache, 5),
                format_args!("scalar vs rescan prefix {end}")
            );
            for (w, engine) in laned.iter_mut() {
                engine.extend_from(&events[..end], &cache);
                prop_assert_identical!(
                    engine.analyze_with_lanes(5, *w),
                    anchor,
                    format_args!("lanes {w} prefix {end}")
                );
            }
        }
    }

    /// Suite 3: batched ingestion ≡ one-at-a-time. Feeding every
    /// instance's trace through `ingest_round` — at one worker and at
    /// several — produces the same per-round confirmations, the same
    /// final subspace registry, and the same similarity-cache content
    /// as sequential `maybe_analyze` calls in the same order.
    #[test]
    fn batched_ingestion_equivalent_to_serial(
        traces in arb_instance_traces(),
        chunk in 3usize..=20,
    ) {
        let mut serial = OnlineTraceAnalyzer::new(analyzer_config(1));
        let mut batched = OnlineTraceAnalyzer::new(analyzer_config(1));
        let mut threaded = OnlineTraceAnalyzer::new(analyzer_config(4));
        let rounds = traces
            .iter()
            .map(|t| t.len().div_ceil(chunk))
            .max()
            .unwrap_or(0);
        for round in 0..rounds {
            let now = VirtualTime::from_secs((round as u64 + 1) * 15);
            let prefixes: Vec<(InstanceId, Trace)> = traces
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    let end = ((round + 1) * chunk).min(t.len());
                    (InstanceId(i as u32), t[..end].iter().cloned().collect())
                })
                .collect();
            let mut serial_confirmed = Vec::new();
            for (id, trace) in &prefixes {
                serial_confirmed.extend(serial.maybe_analyze(*id, trace, now));
            }
            let batch: Vec<(InstanceId, &Trace)> =
                prefixes.iter().map(|(id, t)| (*id, t)).collect();
            let batched_confirmed = batched.ingest_round(&batch, now);
            let threaded_confirmed = threaded.ingest_round(&batch, now);
            prop_assert_eq!(&serial_confirmed, &batched_confirmed, "round {}", round);
            prop_assert_eq!(&serial_confirmed, &threaded_confirmed, "round {} (threaded)", round);
        }
        prop_assert_eq!(serial.subspaces(), batched.subspaces());
        prop_assert_eq!(serial.subspaces(), threaded.subspaces());
        prop_assert_eq!(
            serial.similarity_cache().snapshot(),
            batched.similarity_cache().snapshot()
        );
        prop_assert_eq!(
            serial.similarity_cache().snapshot(),
            threaded.similarity_cache().snapshot()
        );
    }

    /// Suite 4: pooled ingestion ≡ scoped ≡ serial. Attaching a
    /// persistent [`ComputePool`] of any budget to the analyzer changes
    /// only *where* phase A runs, never what it computes: per-round
    /// confirmations, the final subspace registry, and the
    /// similarity-cache content all match both the one-at-a-time serial
    /// reference and the legacy per-round scoped-thread path.
    #[test]
    fn pooled_ingestion_equivalent_to_scoped(
        traces in arb_instance_traces(),
        chunk in 3usize..=20,
        budget_sel in 0usize..4,
    ) {
        let budget = [1usize, 2, 4, 8][budget_sel];
        let mut serial = OnlineTraceAnalyzer::new(analyzer_config(1));
        let mut scoped = OnlineTraceAnalyzer::new(analyzer_config(4));
        let mut pooled = OnlineTraceAnalyzer::new(analyzer_config(1));
        pooled.set_compute(ComputePool::new(budget));
        let rounds = traces
            .iter()
            .map(|t| t.len().div_ceil(chunk))
            .max()
            .unwrap_or(0);
        for round in 0..rounds {
            let now = VirtualTime::from_secs((round as u64 + 1) * 15);
            let prefixes: Vec<(InstanceId, Trace)> = traces
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    let end = ((round + 1) * chunk).min(t.len());
                    (InstanceId(i as u32), t[..end].iter().cloned().collect())
                })
                .collect();
            let mut serial_confirmed = Vec::new();
            for (id, trace) in &prefixes {
                serial_confirmed.extend(serial.maybe_analyze(*id, trace, now));
            }
            let batch: Vec<(InstanceId, &Trace)> =
                prefixes.iter().map(|(id, t)| (*id, t)).collect();
            let scoped_confirmed = scoped.ingest_round(&batch, now);
            let pooled_confirmed = pooled.ingest_round(&batch, now);
            prop_assert_eq!(&serial_confirmed, &scoped_confirmed, "round {} (scoped)", round);
            prop_assert_eq!(
                &serial_confirmed,
                &pooled_confirmed,
                "round {} (pool budget {})",
                round,
                budget
            );
        }
        prop_assert_eq!(serial.subspaces(), scoped.subspaces());
        prop_assert_eq!(serial.subspaces(), pooled.subspaces());
        prop_assert_eq!(
            serial.similarity_cache().snapshot(),
            pooled.similarity_cache().snapshot()
        );
    }
}

/// Concurrency stress: 8 threads hammer one sharded cache with
/// interleaved reads and inserts over the same pair population. No
/// entry may be lost, the post-state must equal a serial fill, and the
/// duplicate-computation overhead is bounded by the racy-insert
/// allowance (each thread computes a given pair at most once: after its
/// own insert it always hits).
#[test]
fn stress_sharded_cache_under_8_threads() {
    const THREADS: usize = 8;
    const SCREENS: u64 = 24;
    let events: Vec<TraceEvent> = (0..SCREENS).map(|i| ev(i, i as u32)).collect();
    let pairs: Vec<(usize, usize)> = (0..events.len())
        .flat_map(|i| (i + 1..events.len()).map(move |j| (i, j)))
        .collect();

    let cache = SimilarityCache::new();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let cache = &cache;
            let events = &events;
            let pairs = &pairs;
            s.spawn(move || {
                // Each thread walks the pair set from a different phase
                // and stride (coprime with the pair count), twice — the
                // second pass is all reads — maximizing shard-lock
                // interleavings without a randomness dependency.
                let n = pairs.len();
                let stride = [1usize, 3, 7, 11, 13, 17, 19, 23][t];
                for pass in 0..2 {
                    for k in 0..n {
                        let (i, j) = pairs[(t * 31 + pass + k * stride) % n];
                        let d = cache.similar(&events[i], &events[j], 0.9);
                        // Decisions are pure: every ask agrees.
                        assert_eq!(d, cache.similar(&events[i], &events[j], 0.9));
                    }
                }
            });
        }
    });

    let serial = SimilarityCache::with_shards(1);
    for &(i, j) in &pairs {
        serial.similar(&events[i], &events[j], 0.9);
    }

    assert_eq!(cache.len(), pairs.len(), "lost entries");
    assert_eq!(
        cache.snapshot(),
        serial.snapshot(),
        "post-state diverged from serial fill"
    );
    let computations = cache.computations();
    assert!(
        computations >= pairs.len() as u64,
        "every distinct pair must be computed at least once"
    );
    assert!(
        computations <= (pairs.len() * THREADS) as u64,
        "duplicate computations beyond the racy-insert allowance: {computations} > {} × {THREADS}",
        pairs.len()
    );
}

/// Occupancy: forgetting an instance evicts cache decisions for screens
/// only it had seen, keeps decisions involving screens a surviving
/// instance still holds, and leaves the cache equal to what the
/// survivors alone would have produced.
#[test]
fn forget_instance_evicts_only_exclusive_screens() {
    // Labels 0..6 are exclusive to instance 0; 6..10 shared; 10..16
    // exclusive to instance 1. Long l_min keeps the windows unsplit so
    // each engine retains its full screen set.
    let mut cfg = analyzer_config(1);
    cfg.find_space.l_min = VirtualDuration::from_mins(30);
    let trace_a: Trace = (0..24).map(|i| ev(i * 2, (i % 10) as u32)).collect();
    let trace_b: Trace = (0..24).map(|i| ev(i * 2, 6 + (i % 10) as u32)).collect();
    let mut analyzer = OnlineTraceAnalyzer::new(cfg);
    analyzer.maybe_analyze(InstanceId(0), &trace_a, VirtualTime::from_secs(100));
    analyzer.maybe_analyze(InstanceId(1), &trace_b, VirtualTime::from_secs(100));
    let exclusive_a: BTreeSet<u64> = (0..6).map(|l| ev(0, l).abstract_id.0).collect();
    let survivors: BTreeSet<u64> = (6..16).map(|l| ev(0, l).abstract_id.0).collect();
    let before = analyzer.similarity_cache().len();
    assert!(before > 0);
    assert!(analyzer
        .similarity_cache()
        .snapshot()
        .keys()
        .any(|k| exclusive_a.contains(&k.0) || exclusive_a.contains(&k.1)));

    analyzer.forget_instance(InstanceId(0));

    let snap = analyzer.similarity_cache().snapshot();
    assert!(snap.len() < before, "eviction must shrink the cache");
    for key in snap.keys() {
        assert!(
            !exclusive_a.contains(&key.0) && !exclusive_a.contains(&key.1),
            "pair {key:?} touches a screen only the forgotten instance saw"
        );
        assert!(
            survivors.contains(&key.0) && survivors.contains(&key.1),
            "pair {key:?} should involve surviving screens only"
        );
    }
    // Shared and survivor-only pairs are retained: instance 1's window
    // holds 10 screens, every pair among them decided during interning.
    assert_eq!(snap.len(), 10 * 9 / 2, "survivor pairs must be retained");

    // Forgetting the last instance clears the rest.
    analyzer.forget_instance(InstanceId(1));
    assert!(analyzer.similarity_cache().is_empty());
}
