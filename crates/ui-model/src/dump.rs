//! `uiautomator dump`-style XML serialization of UI hierarchies.
//!
//! Real Toller/UiAutomator stacks exchange screens as XML dumps; this
//! module writes and parses that format so hierarchies can leave the
//! simulation (for inspection, diffing, or feeding external analyzers)
//! and re-enter it losslessly. The writer/parser pair is deliberately
//! self-contained — the dialect is small and fixed, so a dependency on an
//! XML crate would buy nothing.
//!
//! ```xml
//! <?xml version='1.0' encoding='UTF-8' standalone='yes' ?>
//! <hierarchy rotation="0">
//!   <node class="android.widget.Button" resource-id="btn_buy" text="Buy"
//!         enabled="true" clickable="true" bounds="[40,400][1040,480]"/>
//! </hierarchy>
//! ```

use std::fmt::Write as _;

use crate::action::{ActionId, ActionKind};
use crate::geometry::Bounds;
use crate::hierarchy::UiHierarchy;
use crate::widget::{Widget, WidgetClass};

/// Serializes a hierarchy to a `uiautomator`-flavoured XML dump.
pub fn to_xml(hierarchy: &UiHierarchy) -> String {
    let mut out = String::from(
        "<?xml version='1.0' encoding='UTF-8' standalone='yes' ?>\n<hierarchy rotation=\"0\">\n",
    );
    write_node(hierarchy.root(), 1, &mut out);
    out.push_str("</hierarchy>\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
        .replace('\n', "&#10;")
}

fn unescape(s: &str) -> String {
    s.replace("&#10;", "\n")
        .replace("&quot;", "\"")
        .replace("&gt;", ">")
        .replace("&lt;", "<")
        .replace("&amp;", "&")
}

fn write_node(w: &Widget, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    let _ = write!(out, "{pad}<node class=\"{}\"", w.class.android_name());
    if let Some(rid) = &w.resource_id {
        let _ = write!(out, " resource-id=\"{}\"", escape(rid));
    }
    if let Some(text) = &w.text {
        let _ = write!(out, " text=\"{}\"", escape(text));
    }
    let _ = write!(out, " enabled=\"{}\" bounds=\"{}\"", w.enabled, w.bounds);
    if let Some((id, kind)) = w.affordance {
        let _ = write!(out, " action-id=\"{}\" action-kind=\"{kind}\"", id.0);
    }
    if w.children.is_empty() {
        out.push_str("/>\n");
    } else {
        out.push_str(">\n");
        for c in &w.children {
            write_node(c, depth + 1, out);
        }
        let _ = writeln!(out, "{pad}</node>");
    }
}

/// Parses a dump produced by [`to_xml`] back into a hierarchy.
///
/// # Errors
///
/// Returns a [`ParseDumpError`] describing the first malformed line.
pub fn from_xml(xml: &str) -> Result<UiHierarchy, ParseDumpError> {
    let mut stack: Vec<Widget> = Vec::new();
    let mut root: Option<Widget> = None;
    for (lineno, raw) in xml.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty()
            || line.starts_with("<?xml")
            || line.starts_with("<hierarchy")
            || line.starts_with("</hierarchy")
        {
            continue;
        }
        if line.starts_with("</node") {
            let done = stack
                .pop()
                .ok_or(ParseDumpError::UnbalancedTags(lineno + 1))?;
            attach(&mut stack, &mut root, done, lineno)?;
            continue;
        }
        if !line.starts_with("<node") {
            return Err(ParseDumpError::UnexpectedLine(lineno + 1));
        }
        let self_closing = line.ends_with("/>");
        let widget = parse_node_line(line, lineno + 1)?;
        if self_closing {
            attach(&mut stack, &mut root, widget, lineno)?;
        } else {
            stack.push(widget);
        }
    }
    if !stack.is_empty() {
        return Err(ParseDumpError::UnbalancedTags(0));
    }
    root.map(UiHierarchy::new).ok_or(ParseDumpError::NoRoot)
}

fn attach(
    stack: &mut [Widget],
    root: &mut Option<Widget>,
    node: Widget,
    lineno: usize,
) -> Result<(), ParseDumpError> {
    if let Some(parent) = stack.last_mut() {
        parent.children.push(node);
        Ok(())
    } else if root.is_none() {
        *root = Some(node);
        Ok(())
    } else {
        Err(ParseDumpError::MultipleRoots(lineno + 1))
    }
}

fn attr<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let probe = format!("{name}=\"");
    let start = line.find(&probe)? + probe.len();
    let end = line[start..].find('"')? + start;
    Some(&line[start..end])
}

fn parse_node_line(line: &str, lineno: usize) -> Result<Widget, ParseDumpError> {
    let class_name = attr(line, "class").ok_or(ParseDumpError::MissingAttr(lineno, "class"))?;
    let class = parse_class(class_name).ok_or(ParseDumpError::UnknownClass(lineno))?;
    let mut w = Widget::container(class);
    w.resource_id = attr(line, "resource-id").map(unescape);
    w.text = attr(line, "text").map(unescape);
    w.enabled = attr(line, "enabled").map(|s| s == "true").unwrap_or(true);
    if let Some(b) = attr(line, "bounds") {
        w.bounds = parse_bounds(b).ok_or(ParseDumpError::BadBounds(lineno))?;
    }
    if let (Some(id), Some(kind)) = (attr(line, "action-id"), attr(line, "action-kind")) {
        let id: u32 = id.parse().map_err(|_| ParseDumpError::BadAction(lineno))?;
        let kind = parse_kind(kind).ok_or(ParseDumpError::BadAction(lineno))?;
        w.affordance = Some((ActionId(id), kind));
    }
    Ok(w)
}

fn parse_class(name: &str) -> Option<WidgetClass> {
    [
        WidgetClass::LinearLayout,
        WidgetClass::FrameLayout,
        WidgetClass::RecyclerView,
        WidgetClass::Button,
        WidgetClass::ImageButton,
        WidgetClass::TextView,
        WidgetClass::EditText,
        WidgetClass::ImageView,
        WidgetClass::CheckBox,
        WidgetClass::TabHost,
        WidgetClass::WebView,
        WidgetClass::Switch,
    ]
    .into_iter()
    .find(|c| c.android_name() == name)
}

fn parse_kind(name: &str) -> Option<ActionKind> {
    [
        ActionKind::Click,
        ActionKind::LongClick,
        ActionKind::Scroll,
        ActionKind::SetText,
        ActionKind::Swipe,
    ]
    .into_iter()
    .find(|k| k.to_string() == name)
}

fn parse_bounds(s: &str) -> Option<Bounds> {
    // "[l,t][r,b]"
    let s = s.strip_prefix('[')?;
    let (lt, rest) = s.split_once("][")?;
    let rb = rest.strip_suffix(']')?;
    let (l, t) = lt.split_once(',')?;
    let (r, b) = rb.split_once(',')?;
    Some(Bounds::new(
        l.parse().ok()?,
        t.parse().ok()?,
        r.parse().ok()?,
        b.parse().ok()?,
    ))
}

/// Errors from parsing an XML dump.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseDumpError {
    /// A line was neither a node tag nor boilerplate.
    UnexpectedLine(usize),
    /// Open/close tags did not balance.
    UnbalancedTags(usize),
    /// A second root node appeared.
    MultipleRoots(usize),
    /// A `<node>` lacked a required attribute.
    MissingAttr(usize, &'static str),
    /// The class attribute named an unknown view class.
    UnknownClass(usize),
    /// The bounds attribute was malformed.
    BadBounds(usize),
    /// The action attributes were malformed.
    BadAction(usize),
    /// The dump contained no nodes.
    NoRoot,
}

impl std::fmt::Display for ParseDumpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseDumpError::UnexpectedLine(l) => write!(f, "unexpected content at line {l}"),
            ParseDumpError::UnbalancedTags(l) => write!(f, "unbalanced tags near line {l}"),
            ParseDumpError::MultipleRoots(l) => write!(f, "second root node at line {l}"),
            ParseDumpError::MissingAttr(l, a) => write!(f, "missing attribute `{a}` at line {l}"),
            ParseDumpError::UnknownClass(l) => write!(f, "unknown view class at line {l}"),
            ParseDumpError::BadBounds(l) => write!(f, "malformed bounds at line {l}"),
            ParseDumpError::BadAction(l) => write!(f, "malformed action attributes at line {l}"),
            ParseDumpError::NoRoot => write!(f, "dump contains no nodes"),
        }
    }
}

impl std::error::Error for ParseDumpError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstraction::abstract_hierarchy;

    fn sample() -> UiHierarchy {
        UiHierarchy::new(
            Widget::container(WidgetClass::LinearLayout)
                .with_child(
                    Widget::button("buy", "Buy \"now\" <50% off & more>")
                        .with_bounds(Bounds::new(40, 400, 1040, 480))
                        .with_affordance(ActionId(7), ActionKind::Click),
                )
                .with_child(
                    Widget::container(WidgetClass::FrameLayout)
                        .with_child(Widget::text_view("label", "hello")),
                ),
        )
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let h = sample();
        let xml = to_xml(&h);
        let back = from_xml(&xml).expect("parse back");
        assert_eq!(back, h);
        // Abstraction identity survives the roundtrip, a fortiori.
        assert_eq!(abstract_hierarchy(&back).id(), abstract_hierarchy(&h).id());
    }

    #[test]
    fn xml_looks_like_uiautomator() {
        let xml = to_xml(&sample());
        assert!(xml.starts_with("<?xml version='1.0'"));
        assert!(xml.contains("<hierarchy rotation=\"0\">"));
        assert!(xml.contains("class=\"android.widget.Button\""));
        assert!(xml.contains("bounds=\"[40,400][1040,480]\""));
        assert!(xml.contains("&quot;now&quot;"));
        assert!(xml.contains("&lt;50% off &amp; more&gt;"));
    }

    #[test]
    fn disabled_state_roundtrips() {
        let mut h = sample();
        h.disable_actions(&[ActionId(7)]);
        let back = from_xml(&to_xml(&h)).unwrap();
        assert!(!back.offers(crate::action::Action::Widget(ActionId(7))));
    }

    #[test]
    fn malformed_dumps_error_cleanly() {
        assert_eq!(from_xml(""), Err(ParseDumpError::NoRoot));
        assert!(matches!(
            from_xml("<node class=\"nope\"/>"),
            Err(ParseDumpError::UnknownClass(_))
        ));
        assert!(matches!(
            from_xml("garbage"),
            Err(ParseDumpError::UnexpectedLine(_))
        ));
        assert!(matches!(
            from_xml("<node class=\"android.widget.Button\">"),
            Err(ParseDumpError::UnbalancedTags(_))
        ));
        let two_roots =
            "<node class=\"android.widget.Button\"/>\n<node class=\"android.widget.Button\"/>";
        assert!(matches!(
            from_xml(two_roots),
            Err(ParseDumpError::MultipleRoots(_))
        ));
    }

    #[test]
    fn newlines_in_text_roundtrip() {
        let h = UiHierarchy::new(Widget::text_view("multi", "line one\nline two"));
        let back = from_xml(&to_xml(&h)).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn generated_screens_roundtrip() {
        // Smoke over a richer structure from the simulator would require
        // the app-sim crate (circular); instead build a deep synthetic
        // tree here.
        let mut w = Widget::container(WidgetClass::FrameLayout);
        for i in 0..20 {
            w = Widget::container(WidgetClass::LinearLayout)
                .with_child(w)
                .with_child(Widget::text_view(&format!("lvl{i}"), &format!("depth {i}")));
        }
        let h = UiHierarchy::new(w);
        let back = from_xml(&to_xml(&h)).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.node_count(), h.node_count());
    }
}
