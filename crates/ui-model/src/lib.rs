//! UI substrate for the TaOPT reproduction.
//!
//! This crate models everything a mobile UI testing stack observes and
//! manipulates *below* the level of any concrete app or tool:
//!
//! * [`Widget`] trees and [`UiHierarchy`] values — the screen content a tool
//!   sees, analogous to an Android view hierarchy dump;
//! * [`Action`]s — the inputs a tool can inject (widget interactions and the
//!   global Back button);
//! * screen **abstraction** ([`abstraction`]) — removing volatile text so
//!   that similar screens compare equal, as in the paper's trace analysis;
//! * abstract-hierarchy **tree similarity** ([`similarity`]) used by the
//!   paper's `CountIn` primitive (Algorithm 1, line 7);
//! * the stochastic **UI transition graph** ([`graph::StochasticDigraph`])
//!   `G = (V, E, P)` of Section 4.1;
//! * UI transition **traces** ([`trace`]) — the timestamped screen/action
//!   logs that Toller reports and TaOPT analyzes;
//! * a virtual [`time`] base used by the simulated testing cloud.
//!
//! # Examples
//!
//! ```
//! use taopt_ui_model::{Widget, WidgetClass, UiHierarchy};
//! use taopt_ui_model::abstraction::abstract_hierarchy;
//!
//! let root = Widget::container(WidgetClass::LinearLayout)
//!     .with_child(Widget::button("btn_checkout", "Check out now!"))
//!     .with_child(Widget::text_view("lbl_total", "$ 41.99"));
//! let hierarchy = UiHierarchy::new(root);
//! let abstracted = abstract_hierarchy(&hierarchy);
//! // Text is gone after abstraction, structure remains.
//! assert_eq!(abstracted.node_count(), hierarchy.node_count());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abstraction;
pub mod action;
pub mod dump;
pub mod error;
pub mod geometry;
pub mod graph;
pub mod hierarchy;
pub mod json;
pub mod screen;
pub mod similarity;
pub mod time;
pub mod trace;
pub mod widget;

pub use abstraction::{abstract_hierarchy, AbstractHierarchy, AbstractScreenId};
pub use action::{Action, ActionId, ActionKind};
pub use dump::{from_xml, to_xml, ParseDumpError};
pub use error::UiModelError;
pub use geometry::Bounds;
pub use graph::StochasticDigraph;
pub use hierarchy::UiHierarchy;
pub use json::{JsonError, Value};
pub use screen::{ActivityId, ScreenId, ScreenObservation};
pub use similarity::{count_in, tree_similarity};
pub use time::{VirtualDuration, VirtualTime};
pub use trace::{Trace, TraceEvent};
pub use widget::{Widget, WidgetClass};
