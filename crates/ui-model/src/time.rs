//! Virtual time for the simulated testing cloud.
//!
//! All durations in the paper (the 1-hour test budget `l_p`, the 5-minute and
//! 1-minute `l_min` thresholds, the 1-minute stall timeout) are expressed in
//! wall-clock time on real devices. The simulation replaces wall-clock time
//! with a discrete virtual clock in milliseconds so experiments are fast and
//! perfectly reproducible.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in virtual time, measured in milliseconds from session start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtualTime(u64);

/// A span of virtual time in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtualDuration(u64);

impl VirtualTime {
    /// The session origin (t = 0).
    pub const ZERO: VirtualTime = VirtualTime(0);

    /// Creates a time from raw milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        VirtualTime(ms)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        VirtualTime(secs * 1000)
    }

    /// Raw milliseconds since session start.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds since session start (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// The duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: VirtualTime) -> VirtualDuration {
        VirtualDuration(self.0.saturating_sub(earlier.0))
    }
}

impl VirtualDuration {
    /// The empty duration.
    pub const ZERO: VirtualDuration = VirtualDuration(0);

    /// Creates a duration from raw milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        VirtualDuration(ms)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        VirtualDuration(secs * 1000)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        VirtualDuration(mins * 60 * 1000)
    }

    /// Creates a duration from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        VirtualDuration(hours * 60 * 60 * 1000)
    }

    /// Raw milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// This duration as a fraction of `total` (1.0 when equal).
    ///
    /// Returns 0.0 when `total` is zero.
    pub fn fraction_of(self, total: VirtualDuration) -> f64 {
        if total.0 == 0 {
            0.0
        } else {
            self.0 as f64 / total.0 as f64
        }
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: VirtualDuration) -> VirtualDuration {
        VirtualDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<VirtualDuration> for VirtualTime {
    type Output = VirtualTime;
    fn add(self, rhs: VirtualDuration) -> VirtualTime {
        VirtualTime(self.0 + rhs.0)
    }
}

impl AddAssign<VirtualDuration> for VirtualTime {
    fn add_assign(&mut self, rhs: VirtualDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<VirtualTime> for VirtualTime {
    type Output = VirtualDuration;
    fn sub(self, rhs: VirtualTime) -> VirtualDuration {
        VirtualDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for VirtualDuration {
    type Output = VirtualDuration;
    fn add(self, rhs: VirtualDuration) -> VirtualDuration {
        VirtualDuration(self.0 + rhs.0)
    }
}

impl AddAssign for VirtualDuration {
    fn add_assign(&mut self, rhs: VirtualDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for VirtualDuration {
    type Output = VirtualDuration;
    fn sub(self, rhs: VirtualDuration) -> VirtualDuration {
        VirtualDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for VirtualDuration {
    type Output = VirtualDuration;
    fn mul(self, rhs: u64) -> VirtualDuration {
        VirtualDuration(self.0 * rhs)
    }
}

impl Div<u64> for VirtualDuration {
    type Output = VirtualDuration;
    fn div(self, rhs: u64) -> VirtualDuration {
        VirtualDuration(self.0 / rhs)
    }
}

impl fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}s", self.as_secs())
    }
}

impl fmt::Display for VirtualDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let secs = self.as_secs();
        if secs >= 3600 {
            write!(f, "{:.2}h", secs as f64 / 3600.0)
        } else if secs >= 60 {
            write!(f, "{:.1}m", secs as f64 / 60.0)
        } else {
            write!(f, "{secs}s")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = VirtualTime::ZERO + VirtualDuration::from_secs(90);
        assert_eq!(t.as_secs(), 90);
        assert_eq!(
            t.since(VirtualTime::from_secs(30)),
            VirtualDuration::from_secs(60)
        );
        assert_eq!(t - VirtualTime::from_secs(100), VirtualDuration::ZERO);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(
            VirtualDuration::from_hours(1),
            VirtualDuration::from_mins(60)
        );
        assert_eq!(
            VirtualDuration::from_mins(1),
            VirtualDuration::from_secs(60)
        );
        assert_eq!(
            VirtualDuration::from_secs(1),
            VirtualDuration::from_millis(1000)
        );
    }

    #[test]
    fn fraction_of_handles_zero_total() {
        assert_eq!(
            VirtualDuration::from_secs(5).fraction_of(VirtualDuration::ZERO),
            0.0
        );
        let half = VirtualDuration::from_secs(30).fraction_of(VirtualDuration::from_secs(60));
        assert!((half - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(VirtualDuration::from_secs(42).to_string(), "42s");
        assert_eq!(VirtualDuration::from_mins(5).to_string(), "5.0m");
        assert_eq!(VirtualDuration::from_hours(2).to_string(), "2.00h");
        assert_eq!(VirtualTime::from_secs(7).to_string(), "t+7s");
    }

    #[test]
    fn scalar_ops() {
        assert_eq!(
            VirtualDuration::from_secs(10) * 6,
            VirtualDuration::from_mins(1)
        );
        assert_eq!(
            VirtualDuration::from_mins(1) / 60,
            VirtualDuration::from_secs(1)
        );
    }
}
