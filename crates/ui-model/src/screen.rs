//! Screens and activities.

use std::fmt;
use std::sync::Arc;

use crate::abstraction::{abstract_hierarchy, AbstractHierarchy, AbstractScreenId};
use crate::action::{ActionId, ActionKind};
use crate::hierarchy::UiHierarchy;
use crate::time::VirtualTime;

/// Identifier of a concrete UI screen inside an app's UI-space model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ScreenId(pub u32);

impl fmt::Display for ScreenId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Identifier of an Android activity (the UI-related code unit the ParaAim
/// baseline partitions on).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ActivityId(pub u32);

impl fmt::Display for ActivityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Activity{}", self.0)
    }
}

/// What a testing tool (and the Toller monitor) observes after each step:
/// the current screen's hierarchy plus identifying metadata.
///
/// The abstraction of the hierarchy is computed once on construction and
/// shared, since both the tools (Ape's model) and TaOPT's analyzer consume
/// it on every event.
#[derive(Debug, Clone)]
pub struct ScreenObservation {
    /// Concrete screen id (ground truth; used only by the simulator and
    /// evaluation metrics, never by TaOPT's analyzer).
    pub screen: ScreenId,
    /// The activity hosting this screen.
    pub activity: ActivityId,
    /// The (possibly enforcement-filtered) widget tree.
    pub hierarchy: UiHierarchy,
    /// Structural abstraction of the hierarchy (text removed).
    pub abstraction: Arc<AbstractHierarchy>,
    /// Virtual timestamp of the observation.
    pub time: VirtualTime,
}

impl ScreenObservation {
    /// Builds an observation, computing the hierarchy abstraction.
    pub fn new(
        screen: ScreenId,
        activity: ActivityId,
        hierarchy: UiHierarchy,
        time: VirtualTime,
    ) -> Self {
        let abstraction = Arc::new(abstract_hierarchy(&hierarchy));
        ScreenObservation {
            screen,
            activity,
            hierarchy,
            abstraction,
            time,
        }
    }

    /// Builds an observation with a pre-computed abstraction.
    ///
    /// Since abstraction ignores volatile text and enablement, callers that
    /// re-render the same screen may reuse its abstraction; this is a pure
    /// performance shortcut and must only be used with the abstraction of
    /// the *same* screen structure.
    pub fn with_abstraction(
        screen: ScreenId,
        activity: ActivityId,
        hierarchy: UiHierarchy,
        abstraction: Arc<AbstractHierarchy>,
        time: VirtualTime,
    ) -> Self {
        ScreenObservation {
            screen,
            activity,
            hierarchy,
            abstraction,
            time,
        }
    }

    /// The abstract screen identity (hash of the abstraction).
    pub fn abstract_id(&self) -> AbstractScreenId {
        self.abstraction.id()
    }

    /// Enabled affordances on this screen.
    pub fn enabled_actions(&self) -> Vec<(ActionId, ActionKind)> {
        self.hierarchy.enabled_actions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::widget::{Widget, WidgetClass};

    #[test]
    fn observation_abstracts_once() {
        let h = UiHierarchy::new(
            Widget::container(WidgetClass::LinearLayout)
                .with_child(Widget::text_view("t", "volatile text")),
        );
        let obs = ScreenObservation::new(ScreenId(1), ActivityId(0), h, VirtualTime::ZERO);
        assert_eq!(obs.abstraction.node_count(), 2);
        assert_eq!(obs.abstract_id(), obs.abstraction.id());
    }

    #[test]
    fn ids_display() {
        assert_eq!(ScreenId(5).to_string(), "s5");
        assert_eq!(ActivityId(2).to_string(), "Activity2");
    }
}
