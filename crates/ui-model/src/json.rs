//! Minimal JSON support for offline artifacts.
//!
//! The build environment has no access to crates.io, so the workspace
//! carries its own small JSON layer instead of `serde_json`: a [`Value`]
//! tree with a recursive-descent parser and a compact writer, plus
//! conversions for the types persisted by trace archives and fault plans.
//!
//! Integers are kept exact: values without a fraction or exponent parse
//! into [`Value::UInt`] / [`Value::Int`], never through `f64`, because
//! abstract-screen ids are 64-bit hashes that must roundtrip bit-for-bit.

use std::fmt;
use std::sync::Arc;

use crate::abstraction::{AbstractHierarchy, AbstractNode};
use crate::action::{Action, ActionId};
use crate::screen::{ActivityId, ScreenId};
use crate::time::VirtualTime;
use crate::trace::{Trace, TraceEvent};
use crate::widget::WidgetClass;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer without fraction or exponent.
    UInt(u64),
    /// A negative integer without fraction or exponent.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; key order is preserved.
    Object(Vec<(String, Value)>),
}

/// A parse or conversion failure, with a byte offset for parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input (0 for conversion errors).
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at byte {})", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl JsonError {
    fn new(message: impl Into<String>, offset: usize) -> Self {
        JsonError {
            message: message.into(),
            offset,
        }
    }

    /// A conversion (non-parse) error.
    pub fn conversion(message: impl Into<String>) -> Self {
        JsonError::new(message, 0)
    }
}

impl Value {
    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with the byte offset of the first problem.
    pub fn parse(input: &str) -> Result<Value, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::new("trailing data after document", p.pos));
        }
        Ok(v)
    }

    /// Serializes compactly (no whitespace).
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(n) => out.push_str(&n.to_string()),
            Value::Int(n) => out.push_str(&n.to_string()),
            Value::Float(x) => {
                if x.is_finite() {
                    let s = x.to_string();
                    out.push_str(&s);
                    // Keep the float-ness visible so it reparses as Float.
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    // JSON has no Inf/NaN; null is the least-bad encoding.
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// The boolean, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `u64`, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            Value::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as `i64`, if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            Value::UInt(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::UInt(n) => Some(*n as f64),
            Value::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The string slice, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The items, if this is an `Array`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is an `Object`.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Field lookup on an `Object` (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Like [`Value::get`] but with a conversion-style error.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] naming the missing field.
    pub fn require(&self, key: &str) -> Result<&Value, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::conversion(format!("missing field `{key}`")))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::UInt(n)
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Self {
        Value::UInt(n as u64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::UInt(n as u64)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        if n >= 0 {
            Value::UInt(n as u64)
        } else {
            Value::Int(n)
        }
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Self {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(
                format!("expected `{}`", b as char),
                self.pos,
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError::new(format!("expected `{word}`"), self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(JsonError::new(
                format!("unexpected byte `{}`", other as char),
                self.pos,
            )),
            None => Err(JsonError::new("unexpected end of input", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(JsonError::new("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(JsonError::new("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy runs of plain bytes at once.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| JsonError::new("invalid UTF-8 in string", start))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                Some(_) => {
                    return Err(JsonError::new("unescaped control character", self.pos));
                }
                None => return Err(JsonError::new("unterminated string", self.pos)),
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonError> {
        let b = self
            .peek()
            .ok_or_else(|| JsonError::new("unterminated escape", self.pos))?;
        self.pos += 1;
        Ok(match b {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: expect \uXXXX low half.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let lo = self.hex4()?;
                        0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00) & 0x3FF)
                    } else {
                        return Err(JsonError::new("lone high surrogate", self.pos));
                    }
                } else {
                    hi
                };
                char::from_u32(code)
                    .ok_or_else(|| JsonError::new("invalid \\u escape", self.pos))?
            }
            other => {
                return Err(JsonError::new(
                    format!("unknown escape `\\{}`", other as char),
                    self.pos - 1,
                ));
            }
        })
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(JsonError::new("truncated \\u escape", self.pos));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| JsonError::new("invalid \\u escape", self.pos))?;
        let code = u32::from_str_radix(s, 16)
            .map_err(|_| JsonError::new("invalid \\u escape", self.pos))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::new("invalid number", start))?;
        if !fractional {
            if let Some(rest) = text.strip_prefix('-') {
                if let Ok(n) = rest.parse::<u64>() {
                    if let Ok(i) = i64::try_from(n) {
                        return Ok(Value::Int(-i));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| JsonError::new(format!("invalid number `{text}`"), start))
    }
}

// ---------------------------------------------------------------------------
// Conversions for persisted trace archives.
// ---------------------------------------------------------------------------

fn class_name(class: WidgetClass) -> &'static str {
    match class {
        WidgetClass::LinearLayout => "LinearLayout",
        WidgetClass::FrameLayout => "FrameLayout",
        WidgetClass::RecyclerView => "RecyclerView",
        WidgetClass::Button => "Button",
        WidgetClass::ImageButton => "ImageButton",
        WidgetClass::TextView => "TextView",
        WidgetClass::EditText => "EditText",
        WidgetClass::ImageView => "ImageView",
        WidgetClass::CheckBox => "CheckBox",
        WidgetClass::TabHost => "TabHost",
        WidgetClass::WebView => "WebView",
        WidgetClass::Switch => "Switch",
    }
}

fn class_from_name(name: &str) -> Result<WidgetClass, JsonError> {
    Ok(match name {
        "LinearLayout" => WidgetClass::LinearLayout,
        "FrameLayout" => WidgetClass::FrameLayout,
        "RecyclerView" => WidgetClass::RecyclerView,
        "Button" => WidgetClass::Button,
        "ImageButton" => WidgetClass::ImageButton,
        "TextView" => WidgetClass::TextView,
        "EditText" => WidgetClass::EditText,
        "ImageView" => WidgetClass::ImageView,
        "CheckBox" => WidgetClass::CheckBox,
        "TabHost" => WidgetClass::TabHost,
        "WebView" => WidgetClass::WebView,
        "Switch" => WidgetClass::Switch,
        other => {
            return Err(JsonError::conversion(format!(
                "unknown widget class `{other}`"
            )));
        }
    })
}

/// Encodes an abstract node as `{c, r?, k?}` (class, resource id,
/// children; absent fields mean `None` / empty).
pub fn abstract_node_to_value(node: &AbstractNode) -> Value {
    let mut fields = vec![("c".to_owned(), Value::from(class_name(node.class)))];
    if let Some(rid) = &node.resource_id {
        fields.push(("r".to_owned(), Value::from(rid.clone())));
    }
    if !node.children.is_empty() {
        fields.push((
            "k".to_owned(),
            Value::Array(node.children.iter().map(abstract_node_to_value).collect()),
        ));
    }
    Value::Object(fields)
}

/// Decodes an abstract node written by [`abstract_node_to_value`].
///
/// # Errors
///
/// Returns [`JsonError`] on missing or mistyped fields.
pub fn abstract_node_from_value(v: &Value) -> Result<AbstractNode, JsonError> {
    let class = class_from_name(
        v.require("c")?
            .as_str()
            .ok_or_else(|| JsonError::conversion("widget class must be a string"))?,
    )?;
    let resource_id = match v.get("r") {
        Some(r) => Some(
            r.as_str()
                .ok_or_else(|| JsonError::conversion("resource id must be a string"))?
                .to_owned(),
        ),
        None => None,
    };
    let children = match v.get("k") {
        Some(k) => k
            .as_array()
            .ok_or_else(|| JsonError::conversion("children must be an array"))?
            .iter()
            .map(abstract_node_from_value)
            .collect::<Result<_, _>>()?,
        None => Vec::new(),
    };
    Ok(AbstractNode {
        class,
        resource_id,
        children,
    })
}

fn action_to_value(action: Option<Action>) -> Value {
    match action {
        None => Value::Null,
        Some(Action::Back) => Value::from("back"),
        Some(Action::Noop) => Value::from("noop"),
        Some(Action::Widget(id)) => Value::from(id.0),
    }
}

fn action_from_value(v: &Value) -> Result<Option<Action>, JsonError> {
    Ok(match v {
        Value::Null => None,
        Value::Str(s) if s == "back" => Some(Action::Back),
        Value::Str(s) if s == "noop" => Some(Action::Noop),
        other => {
            let id = other
                .as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| JsonError::conversion("action must be null/back/noop/u32"))?;
            Some(Action::Widget(ActionId(id)))
        }
    })
}

/// Encodes a trace as `{abstractions: [...], events: [...]}`.
///
/// Distinct abstractions are stored once in a table (first-appearance
/// order); events reference them by index, so the `Arc` sharing between
/// events with the same screen survives a roundtrip.
pub fn trace_to_value(trace: &Trace) -> Value {
    let mut table: Vec<&Arc<AbstractHierarchy>> = Vec::new();
    let mut events = Vec::with_capacity(trace.len());
    for e in trace.events() {
        let idx = match table.iter().position(|a| a.id() == e.abstract_id) {
            Some(i) => i,
            None => {
                table.push(&e.abstraction);
                table.len() - 1
            }
        };
        events.push(Value::Object(vec![
            ("t".to_owned(), Value::from(e.time.as_millis())),
            ("s".to_owned(), Value::from(e.screen.0)),
            ("y".to_owned(), Value::from(e.activity.0)),
            ("u".to_owned(), Value::from(idx)),
            ("a".to_owned(), action_to_value(e.action)),
            (
                "w".to_owned(),
                e.action_widget_rid
                    .as_deref()
                    .map_or(Value::Null, Value::from),
            ),
        ]));
    }
    Value::Object(vec![
        (
            "abstractions".to_owned(),
            Value::Array(
                table
                    .iter()
                    .map(|a| abstract_node_to_value(a.root()))
                    .collect(),
            ),
        ),
        ("events".to_owned(), Value::Array(events)),
    ])
}

/// Decodes a trace written by [`trace_to_value`]. Abstract ids and
/// similarity signatures are recomputed from the stored trees, so they
/// match the originals exactly (the id is a pure function of the tree).
///
/// # Errors
///
/// Returns [`JsonError`] on missing or mistyped fields.
pub fn trace_from_value(v: &Value) -> Result<Trace, JsonError> {
    let table: Vec<Arc<AbstractHierarchy>> = v
        .require("abstractions")?
        .as_array()
        .ok_or_else(|| JsonError::conversion("abstractions must be an array"))?
        .iter()
        .map(|n| {
            Ok(Arc::new(AbstractHierarchy::from_root(
                abstract_node_from_value(n)?,
            )))
        })
        .collect::<Result<_, JsonError>>()?;
    let events = v
        .require("events")?
        .as_array()
        .ok_or_else(|| JsonError::conversion("events must be an array"))?;
    let mut trace = Trace::new();
    for e in events {
        let field_u64 = |key: &str| -> Result<u64, JsonError> {
            e.require(key)?
                .as_u64()
                .ok_or_else(|| JsonError::conversion(format!("field `{key}` must be a u64")))
        };
        let idx = field_u64("u")? as usize;
        let abstraction = table
            .get(idx)
            .ok_or_else(|| JsonError::conversion("abstraction index out of range"))?
            .clone();
        let widget_rid = match e.require("w")? {
            Value::Null => None,
            Value::Str(s) => Some(Arc::from(s.as_str())),
            _ => return Err(JsonError::conversion("field `w` must be a string or null")),
        };
        trace.push(TraceEvent {
            time: VirtualTime::from_millis(field_u64("t")?),
            screen: ScreenId(
                u32::try_from(field_u64("s")?)
                    .map_err(|_| JsonError::conversion("screen id out of range"))?,
            ),
            activity: ActivityId(
                u32::try_from(field_u64("y")?)
                    .map_err(|_| JsonError::conversion("activity id out of range"))?,
            ),
            abstract_id: abstraction.id(),
            abstraction,
            action: action_from_value(e.require("a")?)?,
            action_widget_rid: widget_rid,
        });
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-7",
            "18446744073709551615",
            "\"hi\"",
        ] {
            let v = Value::parse(text).unwrap();
            assert_eq!(v.to_json_string(), text);
        }
        assert_eq!(Value::parse("1.5").unwrap(), Value::Float(1.5));
        assert_eq!(Value::Float(2.0).to_json_string(), "2.0");
        assert_eq!(Value::parse("1e3").unwrap().as_f64(), Some(1000.0));
    }

    #[test]
    fn u64_hash_ids_are_exact() {
        // A value that f64 cannot represent exactly.
        let id = 0xDEAD_BEEF_CAFE_F00Du64 | 1;
        let text = Value::from(id).to_json_string();
        assert_eq!(Value::parse(&text).unwrap().as_u64(), Some(id));
    }

    #[test]
    fn structures_and_escapes_roundtrip() {
        let v = Value::Object(vec![
            ("quote\"\\".to_owned(), Value::from("line\nbreak\ttab")),
            ("unicode".to_owned(), Value::from("héllo ☃")),
            ("items".to_owned(), Value::from(vec![1u64, 2, 3])),
            (
                "nested".to_owned(),
                Value::Object(vec![("x".to_owned(), Value::Null)]),
            ),
        ]);
        let text = v.to_json_string();
        assert_eq!(Value::parse(&text).unwrap(), v);
    }

    #[test]
    fn surrogate_pairs_parse() {
        let v = Value::parse("\"\\ud83d\\ude00 ok\"").unwrap();
        assert_eq!(v.as_str(), Some("😀 ok"));
    }

    #[test]
    fn errors_carry_offsets() {
        assert!(Value::parse("[1, 2").is_err());
        assert!(Value::parse("{\"a\" 1}").is_err());
        assert!(Value::parse("tru").is_err());
        let err = Value::parse("[1] trailing").unwrap_err();
        assert!(
            err.offset >= 3,
            "offset {} should be past the array",
            err.offset
        );
    }

    #[test]
    fn trace_roundtrips_with_shared_abstractions() {
        use crate::trace::tests::event;
        let tr: Trace = [event(0, 1, "a"), event(3, 2, "b"), event(6, 1, "a")]
            .into_iter()
            .collect();
        let text = trace_to_value(&tr).to_json_string();
        let back = trace_from_value(&Value::parse(&text).unwrap()).unwrap();
        assert_eq!(back.len(), tr.len());
        for (x, y) in tr.events().iter().zip(back.events()) {
            assert_eq!(x.abstract_id, y.abstract_id);
            assert_eq!(x.time, y.time);
            assert_eq!(x.screen, y.screen);
            assert_eq!(x.action, y.action);
        }
        // Events 0 and 2 share one hierarchy after the roundtrip.
        assert!(Arc::ptr_eq(
            &back.events()[0].abstraction,
            &back.events()[2].abstraction
        ));
    }
}
