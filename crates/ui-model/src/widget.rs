//! Widgets — nodes of a UI hierarchy.

use std::fmt;

use crate::action::{ActionId, ActionKind};
use crate::geometry::Bounds;

/// The view class of a widget, mirroring common Android view classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum WidgetClass {
    /// A vertical/horizontal container.
    LinearLayout,
    /// A constraint-based container.
    FrameLayout,
    /// A scrolling list.
    RecyclerView,
    /// A push button.
    Button,
    /// An image button (e.g. a tab icon).
    ImageButton,
    /// A static text label.
    TextView,
    /// An editable text field.
    EditText,
    /// A static image.
    ImageView,
    /// A check box.
    CheckBox,
    /// A tab host / bottom navigation bar.
    TabHost,
    /// An embedded web view.
    WebView,
    /// A toggle switch.
    Switch,
}

impl WidgetClass {
    /// The fully qualified Android class name this models.
    pub fn android_name(&self) -> &'static str {
        match self {
            WidgetClass::LinearLayout => "android.widget.LinearLayout",
            WidgetClass::FrameLayout => "android.widget.FrameLayout",
            WidgetClass::RecyclerView => "androidx.recyclerview.widget.RecyclerView",
            WidgetClass::Button => "android.widget.Button",
            WidgetClass::ImageButton => "android.widget.ImageButton",
            WidgetClass::TextView => "android.widget.TextView",
            WidgetClass::EditText => "android.widget.EditText",
            WidgetClass::ImageView => "android.widget.ImageView",
            WidgetClass::CheckBox => "android.widget.CheckBox",
            WidgetClass::TabHost => "android.widget.TabHost",
            WidgetClass::WebView => "android.webkit.WebView",
            WidgetClass::Switch => "android.widget.Switch",
        }
    }
}

impl fmt::Display for WidgetClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.android_name())
    }
}

/// One node of a UI hierarchy.
///
/// A widget may carry an *affordance*: an [`ActionId`] plus [`ActionKind`]
/// describing what a testing tool can do with it. Enforcement (the Toller
/// shim) disables widgets by clearing [`Widget::enabled`]; disabled widgets
/// are invisible to tools' action enumeration, which is exactly how TaOPT
/// blocks subspace entrypoints without modifying the tool.
#[derive(Debug, Clone, PartialEq)]
pub struct Widget {
    /// View class.
    pub class: WidgetClass,
    /// Android resource id (stable across visits), if any.
    pub resource_id: Option<String>,
    /// Visible text (volatile; removed by abstraction).
    pub text: Option<String>,
    /// Whether the widget is currently enabled.
    pub enabled: bool,
    /// The affordance this widget exposes, if interactive.
    pub affordance: Option<(ActionId, ActionKind)>,
    /// On-screen bounds.
    pub bounds: Bounds,
    /// Child widgets.
    pub children: Vec<Widget>,
}

impl Widget {
    /// Creates a non-interactive container of the given class.
    pub fn container(class: WidgetClass) -> Self {
        Widget {
            class,
            resource_id: None,
            text: None,
            enabled: true,
            affordance: None,
            bounds: Bounds::default(),
            children: Vec::new(),
        }
    }

    /// Creates a leaf widget of the given class with a resource id.
    pub fn leaf(class: WidgetClass, resource_id: &str) -> Self {
        Widget {
            resource_id: Some(resource_id.to_owned()),
            ..Widget::container(class)
        }
    }

    /// Creates a clickable button with text. The affordance id must be
    /// attached afterwards with [`Widget::with_affordance`] to make it
    /// actionable in the simulation.
    pub fn button(resource_id: &str, text: &str) -> Self {
        Widget {
            text: Some(text.to_owned()),
            ..Widget::leaf(WidgetClass::Button, resource_id)
        }
    }

    /// Creates a static text label.
    pub fn text_view(resource_id: &str, text: &str) -> Self {
        Widget {
            text: Some(text.to_owned()),
            ..Widget::leaf(WidgetClass::TextView, resource_id)
        }
    }

    /// Attaches an affordance, making the widget interactive.
    pub fn with_affordance(mut self, id: ActionId, kind: ActionKind) -> Self {
        self.affordance = Some((id, kind));
        self
    }

    /// Sets the visible text.
    pub fn with_text(mut self, text: &str) -> Self {
        self.text = Some(text.to_owned());
        self
    }

    /// Sets the bounds.
    pub fn with_bounds(mut self, bounds: Bounds) -> Self {
        self.bounds = bounds;
        self
    }

    /// Appends a child and returns `self` (builder style).
    pub fn with_child(mut self, child: Widget) -> Self {
        self.children.push(child);
        self
    }

    /// Number of nodes in the subtree rooted here (including `self`).
    pub fn subtree_size(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(Widget::subtree_size)
            .sum::<usize>()
    }

    /// Depth-first pre-order visit of the subtree.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Widget)) {
        f(self);
        for c in &self.children {
            c.visit(f);
        }
    }

    /// Depth-first pre-order mutable visit of the subtree.
    pub fn visit_mut(&mut self, f: &mut impl FnMut(&mut Widget)) {
        f(self);
        for c in &mut self.children {
            c.visit_mut(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Widget {
        Widget::container(WidgetClass::LinearLayout)
            .with_child(Widget::button("go", "Go").with_affordance(ActionId(1), ActionKind::Click))
            .with_child(
                Widget::container(WidgetClass::FrameLayout)
                    .with_child(Widget::text_view("label", "hello")),
            )
    }

    #[test]
    fn subtree_size_counts_all_nodes() {
        assert_eq!(sample().subtree_size(), 4);
    }

    #[test]
    fn visit_is_preorder() {
        let w = sample();
        let mut classes = Vec::new();
        w.visit(&mut |n| classes.push(n.class));
        assert_eq!(
            classes,
            vec![
                WidgetClass::LinearLayout,
                WidgetClass::Button,
                WidgetClass::FrameLayout,
                WidgetClass::TextView,
            ]
        );
    }

    #[test]
    fn visit_mut_can_disable_everything() {
        let mut w = sample();
        w.visit_mut(&mut |n| n.enabled = false);
        let mut all_disabled = true;
        w.visit(&mut |n| all_disabled &= !n.enabled);
        assert!(all_disabled);
    }

    #[test]
    fn builders_set_fields() {
        let w = Widget::button("x", "y")
            .with_bounds(Bounds::new(0, 0, 10, 10))
            .with_affordance(ActionId(9), ActionKind::LongClick);
        assert_eq!(w.resource_id.as_deref(), Some("x"));
        assert_eq!(w.text.as_deref(), Some("y"));
        assert_eq!(w.affordance, Some((ActionId(9), ActionKind::LongClick)));
        assert_eq!(w.bounds.width(), 10);
    }

    #[test]
    fn android_names_are_qualified() {
        let mut seen = std::collections::HashSet::new();
        for c in [
            WidgetClass::LinearLayout,
            WidgetClass::FrameLayout,
            WidgetClass::RecyclerView,
            WidgetClass::Button,
            WidgetClass::ImageButton,
            WidgetClass::TextView,
            WidgetClass::EditText,
            WidgetClass::ImageView,
            WidgetClass::CheckBox,
            WidgetClass::TabHost,
            WidgetClass::WebView,
            WidgetClass::Switch,
        ] {
            let name = c.android_name();
            assert!(name.contains('.'), "{name} should be fully qualified");
            assert!(seen.insert(name), "{name} duplicated");
        }
    }
}
