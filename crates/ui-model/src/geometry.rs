//! Screen geometry for widgets.

/// A rectangle in screen coordinates, matching the Android
/// `[left, top][right, bottom]` bounds notation of UI hierarchy dumps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Bounds {
    /// Left edge in pixels.
    pub left: i32,
    /// Top edge in pixels.
    pub top: i32,
    /// Right edge in pixels.
    pub right: i32,
    /// Bottom edge in pixels.
    pub bottom: i32,
}

impl Bounds {
    /// Creates bounds from the four edges.
    pub const fn new(left: i32, top: i32, right: i32, bottom: i32) -> Self {
        Bounds {
            left,
            top,
            right,
            bottom,
        }
    }

    /// Width of the rectangle (zero if degenerate).
    pub fn width(&self) -> i32 {
        (self.right - self.left).max(0)
    }

    /// Height of the rectangle (zero if degenerate).
    pub fn height(&self) -> i32 {
        (self.bottom - self.top).max(0)
    }

    /// Area in square pixels.
    pub fn area(&self) -> i64 {
        self.width() as i64 * self.height() as i64
    }

    /// Whether the point `(x, y)` falls inside (edges inclusive on
    /// left/top, exclusive on right/bottom, as on Android).
    pub fn contains(&self, x: i32, y: i32) -> bool {
        x >= self.left && x < self.right && y >= self.top && y < self.bottom
    }

    /// The center point of the rectangle.
    pub fn center(&self) -> (i32, i32) {
        (self.left + self.width() / 2, self.top + self.height() / 2)
    }
}

impl std::fmt::Display for Bounds {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{},{}][{},{}]",
            self.left, self.top, self.right, self.bottom
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions() {
        let b = Bounds::new(10, 20, 110, 220);
        assert_eq!(b.width(), 100);
        assert_eq!(b.height(), 200);
        assert_eq!(b.area(), 20_000);
        assert_eq!(b.center(), (60, 120));
    }

    #[test]
    fn degenerate_bounds_have_zero_size() {
        let b = Bounds::new(50, 50, 10, 10);
        assert_eq!(b.width(), 0);
        assert_eq!(b.height(), 0);
        assert_eq!(b.area(), 0);
    }

    #[test]
    fn containment_edges() {
        let b = Bounds::new(0, 0, 10, 10);
        assert!(b.contains(0, 0));
        assert!(b.contains(9, 9));
        assert!(!b.contains(10, 10));
        assert!(!b.contains(-1, 5));
    }

    #[test]
    fn display_matches_android_notation() {
        assert_eq!(Bounds::new(1, 2, 3, 4).to_string(), "[1,2][3,4]");
    }
}
