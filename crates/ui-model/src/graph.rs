//! Stochastic directed graphs — the paper's `G = (V, E, P)` model.
//!
//! Section 4.1 models automated UI testing as a random walk on a stochastic
//! directed graph whose vertices are UI states and whose edge weights are
//! the probability that the *testing tool* selects the triggering action.
//! This module provides the graph container and the volume/conductance
//! primitives from Equation (2); the MC-GPP optimization itself lives in
//! the `taopt` core crate.

use std::collections::{BTreeMap, BTreeSet};

use crate::error::UiModelError;

/// A weighted directed graph with probability-like edge weights.
///
/// Nodes are opaque `u64` keys (abstract screen ids in the UI setting, but
/// any event-driven state space works, per the paper's §7 generalization).
/// Parallel edges are merged by summing weights.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StochasticDigraph {
    edges: BTreeMap<u64, BTreeMap<u64, f64>>,
    nodes: BTreeSet<u64>,
}

impl StochasticDigraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a node without edges.
    pub fn add_node(&mut self, node: u64) {
        self.nodes.insert(node);
    }

    /// Adds `weight` to the edge `from → to`.
    ///
    /// # Errors
    ///
    /// Returns [`UiModelError::InvalidProbability`] if `weight` is negative
    /// or not finite.
    pub fn add_edge(&mut self, from: u64, to: u64, weight: f64) -> Result<(), UiModelError> {
        if !weight.is_finite() || weight < 0.0 {
            return Err(UiModelError::InvalidProbability(weight));
        }
        self.nodes.insert(from);
        self.nodes.insert(to);
        *self.edges.entry(from).or_default().entry(to).or_insert(0.0) += weight;
        Ok(())
    }

    /// The weight of the edge `from → to` (0.0 if absent).
    pub fn weight(&self, from: u64, to: u64) -> f64 {
        self.edges
            .get(&from)
            .and_then(|m| m.get(&to))
            .copied()
            .unwrap_or(0.0)
    }

    /// Iterator over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = u64> + '_ {
        self.nodes.iter().copied()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed edges with nonzero weight.
    pub fn edge_count(&self) -> usize {
        self.edges
            .values()
            .map(|m| m.values().filter(|w| **w > 0.0).count())
            .sum()
    }

    /// Iterator over `(from, to, weight)` triples.
    pub fn edges(&self) -> impl Iterator<Item = (u64, u64, f64)> + '_ {
        self.edges
            .iter()
            .flat_map(|(f, m)| m.iter().map(move |(t, w)| (*f, *t, *w)))
    }

    /// Out-neighbours of a node with weights.
    pub fn out_edges(&self, from: u64) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.edges
            .get(&from)
            .into_iter()
            .flat_map(|m| m.iter().map(|(t, w)| (*t, *w)))
    }

    /// Total weight of edges crossing from `a` into `b`:
    /// `Σ_{i∈a, j∈b} p(i, j)`.
    pub fn cut_weight(&self, a: &BTreeSet<u64>, b: &BTreeSet<u64>) -> f64 {
        a.iter()
            .filter_map(|i| self.edges.get(i))
            .map(|m| {
                m.iter()
                    .filter(|(t, _)| b.contains(t))
                    .map(|(_, w)| w)
                    .sum::<f64>()
            })
            .sum()
    }

    /// The paper's subgraph volume (Eq. 2):
    /// `vol(Gx) = Σ_{i∈Gx, j∉Gx} (p(j,i) − p(i,j)) + 2·Σ_{i,j∈Gx} p(i,j)`.
    pub fn volume(&self, subset: &BTreeSet<u64>) -> f64 {
        let mut boundary = 0.0;
        let mut internal = 0.0;
        for (from, to, w) in self.edges() {
            let fi = subset.contains(&from);
            let ti = subset.contains(&to);
            match (fi, ti) {
                (true, true) => internal += w,
                (true, false) => boundary -= w,
                (false, true) => boundary += w,
                (false, false) => {}
            }
        }
        boundary + 2.0 * internal
    }

    /// Normalizes every node's outgoing weights to sum to 1 (nodes with no
    /// outgoing edges are left untouched), yielding a transition function.
    pub fn normalized(&self) -> StochasticDigraph {
        let mut out = StochasticDigraph::new();
        for n in &self.nodes {
            out.add_node(*n);
        }
        for (from, m) in &self.edges {
            let total: f64 = m.values().sum();
            if total > 0.0 {
                for (to, w) in m {
                    out.edges.entry(*from).or_default().insert(*to, w / total);
                }
            }
        }
        out
    }

    /// Builds the empirical transition graph of a node sequence: each
    /// consecutive pair contributes unit weight.
    pub fn from_walk(walk: &[u64]) -> StochasticDigraph {
        let mut g = StochasticDigraph::new();
        for w in walk.windows(2) {
            g.add_edge(w[0], w[1], 1.0).expect("unit weight is valid");
        }
        if let [only] = walk {
            g.add_node(*only);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u64]) -> BTreeSet<u64> {
        ids.iter().copied().collect()
    }

    #[test]
    fn add_edge_merges_parallel_edges() {
        let mut g = StochasticDigraph::new();
        g.add_edge(1, 2, 0.25).unwrap();
        g.add_edge(1, 2, 0.25).unwrap();
        assert_eq!(g.weight(1, 2), 0.5);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.node_count(), 2);
    }

    #[test]
    fn negative_weight_is_rejected() {
        let mut g = StochasticDigraph::new();
        assert_eq!(
            g.add_edge(1, 2, -0.1),
            Err(UiModelError::InvalidProbability(-0.1))
        );
        assert!(g.add_edge(1, 2, f64::NAN).is_err());
    }

    #[test]
    fn cut_weight_is_directional() {
        let mut g = StochasticDigraph::new();
        g.add_edge(1, 2, 0.7).unwrap();
        g.add_edge(2, 1, 0.1).unwrap();
        assert_eq!(g.cut_weight(&set(&[1]), &set(&[2])), 0.7);
        assert_eq!(g.cut_weight(&set(&[2]), &set(&[1])), 0.1);
    }

    #[test]
    fn volume_matches_paper_formula() {
        // Two internal nodes {1,2} with edges 1->2 (0.5), plus boundary:
        // 3->1 in (0.2), 2->3 out (0.3).
        let mut g = StochasticDigraph::new();
        g.add_edge(1, 2, 0.5).unwrap();
        g.add_edge(3, 1, 0.2).unwrap();
        g.add_edge(2, 3, 0.3).unwrap();
        let vol = g.volume(&set(&[1, 2]));
        // boundary = +0.2 (in) - 0.3 (out) = -0.1; internal = 0.5.
        assert!((vol - (-0.1 + 2.0 * 0.5)).abs() < 1e-12);
    }

    #[test]
    fn normalized_rows_sum_to_one() {
        let mut g = StochasticDigraph::new();
        g.add_edge(1, 2, 3.0).unwrap();
        g.add_edge(1, 3, 1.0).unwrap();
        let n = g.normalized();
        let total: f64 = n.out_edges(1).map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((n.weight(1, 2) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn from_walk_counts_transitions() {
        let g = StochasticDigraph::from_walk(&[1, 2, 1, 2, 3]);
        assert_eq!(g.weight(1, 2), 2.0);
        assert_eq!(g.weight(2, 1), 1.0);
        assert_eq!(g.weight(2, 3), 1.0);
        let single = StochasticDigraph::from_walk(&[9]);
        assert_eq!(single.node_count(), 1);
        assert_eq!(single.edge_count(), 0);
    }
}
