//! UI transition traces — the input to TaOPT's online analysis.
//!
//! A trace is "a sequence of UI screens interspersed with corresponding UI
//! actions" (§5.2), produced by the Toller monitor. Each event records the
//! screen observed *after* executing `action` (the first event has no
//! action: it is the app's start screen).

use std::sync::Arc;

use crate::abstraction::{AbstractHierarchy, AbstractScreenId};
use crate::action::Action;
use crate::error::UiModelError;
use crate::graph::StochasticDigraph;
use crate::screen::{ActivityId, ScreenId};
use crate::time::VirtualTime;

/// One monitored UI transition.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// When the resulting screen was observed.
    pub time: VirtualTime,
    /// Concrete screen id (simulator ground truth; metrics only).
    pub screen: ScreenId,
    /// Hosting activity.
    pub activity: ActivityId,
    /// Abstract identity of the observed screen.
    pub abstract_id: AbstractScreenId,
    /// The abstraction itself (shared; used by tree-similarity analysis).
    pub abstraction: Arc<AbstractHierarchy>,
    /// The action whose execution produced this observation
    /// (`None` for the initial screen).
    pub action: Option<Action>,
    /// Resource id of the widget the action was fired on (the
    /// tool-agnostic handle used to build entrypoint block rules).
    /// Shared, not owned: trace events are cloned on the analyzer hot
    /// path and across stream/snapshot boundaries, so the rid rides
    /// along by refcount instead of by heap copy.
    pub action_widget_rid: Option<Arc<str>>,
}

/// An append-only UI transition trace for one testing instance.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an event.
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// All events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The most recent event.
    pub fn last(&self) -> Option<&TraceEvent> {
        self.events.last()
    }

    /// Timestamp of the last event.
    ///
    /// # Errors
    ///
    /// Returns [`UiModelError::EmptyTrace`] for an empty trace.
    pub fn end_time(&self) -> Result<VirtualTime, UiModelError> {
        self.events
            .last()
            .map(|e| e.time)
            .ok_or(UiModelError::EmptyTrace)
    }

    /// The sequence of abstract screen ids visited.
    pub fn abstract_walk(&self) -> Vec<u64> {
        self.events.iter().map(|e| e.abstract_id.0).collect()
    }

    /// The empirical transition graph over abstract screens, normalized to
    /// a stochastic transition function.
    pub fn transition_graph(&self) -> StochasticDigraph {
        StochasticDigraph::from_walk(&self.abstract_walk()).normalized()
    }

    /// Distinct abstract screens seen up to (excluding) index `end`.
    pub fn distinct_before(&self, end: usize) -> std::collections::BTreeSet<AbstractScreenId> {
        self.events[..end.min(self.events.len())]
            .iter()
            .map(|e| e.abstract_id)
            .collect()
    }

    /// Distinct abstract screens seen from index `start` on.
    pub fn distinct_from(&self, start: usize) -> std::collections::BTreeSet<AbstractScreenId> {
        self.events[start.min(self.events.len())..]
            .iter()
            .map(|e| e.abstract_id)
            .collect()
    }
}

impl FromIterator<TraceEvent> for Trace {
    fn from_iter<T: IntoIterator<Item = TraceEvent>>(iter: T) -> Self {
        Trace {
            events: iter.into_iter().collect(),
        }
    }
}

impl Extend<TraceEvent> for Trace {
    fn extend<T: IntoIterator<Item = TraceEvent>>(&mut self, iter: T) {
        self.events.extend(iter);
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::abstraction::abstract_hierarchy;
    use crate::hierarchy::UiHierarchy;
    use crate::widget::{Widget, WidgetClass};

    pub(crate) fn event(t: u64, screen: u32, rid: &str) -> TraceEvent {
        let h = UiHierarchy::new(
            Widget::container(WidgetClass::LinearLayout).with_child(Widget::text_view(rid, "txt")),
        );
        let a = Arc::new(abstract_hierarchy(&h));
        TraceEvent {
            time: VirtualTime::from_secs(t),
            screen: ScreenId(screen),
            activity: ActivityId(0),
            abstract_id: a.id(),
            abstraction: a,
            action: if t == 0 { None } else { Some(Action::Back) },
            action_widget_rid: None,
        }
    }

    #[test]
    fn push_and_query() {
        let mut tr = Trace::new();
        assert!(tr.is_empty());
        assert_eq!(tr.end_time(), Err(UiModelError::EmptyTrace));
        tr.push(event(0, 1, "a"));
        tr.push(event(5, 2, "b"));
        tr.push(event(9, 1, "a"));
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.end_time().unwrap(), VirtualTime::from_secs(9));
        assert_eq!(tr.last().unwrap().screen, ScreenId(1));
    }

    #[test]
    fn distinct_windows() {
        let tr: Trace = [event(0, 1, "a"), event(1, 2, "b"), event(2, 1, "a")]
            .into_iter()
            .collect();
        assert_eq!(tr.distinct_before(2).len(), 2);
        assert_eq!(tr.distinct_from(1).len(), 2);
        assert_eq!(tr.distinct_from(2).len(), 1);
        // Out-of-range indexes saturate.
        assert_eq!(tr.distinct_from(99).len(), 0);
        assert_eq!(tr.distinct_before(99).len(), 2);
    }

    #[test]
    fn transition_graph_is_normalized() {
        let tr: Trace = [
            event(0, 1, "a"),
            event(1, 2, "b"),
            event(2, 1, "a"),
            event(3, 2, "b"),
        ]
        .into_iter()
        .collect();
        let g = tr.transition_graph();
        for n in g.nodes() {
            let total: f64 = g.out_edges(n).map(|(_, w)| w).sum();
            assert!(total == 0.0 || (total - 1.0).abs() < 1e-12);
        }
    }
}
