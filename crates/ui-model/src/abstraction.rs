//! Screen abstraction — removing volatile content from UI hierarchies.
//!
//! The paper abstracts each screen before comparison "to avoid excessive
//! counts of similar screens. This abstraction removes text associated with
//! UI elements" (§5.2, citing Baek & Bae and Su et al.). The abstraction
//! here keeps the tree *structure*, widget *classes* and *resource ids* —
//! the stable identity of a screen — and drops text, enablement and bounds.

use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::hierarchy::UiHierarchy;
use crate::widget::{Widget, WidgetClass};

/// Hash identity of an abstracted screen. Two screens with the same
/// structure, classes and resource ids share an id even when their text
/// content differs (e.g. two product-detail pages for different goods).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct AbstractScreenId(pub u64);

impl fmt::Display for AbstractScreenId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ui#{:016x}", self.0)
    }
}

/// One node of an abstracted hierarchy.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AbstractNode {
    /// Widget class (kept by the abstraction).
    pub class: WidgetClass,
    /// Resource id (kept; stable across visits).
    pub resource_id: Option<String>,
    /// Abstracted children.
    pub children: Vec<AbstractNode>,
}

impl AbstractNode {
    fn from_widget(w: &Widget) -> Self {
        AbstractNode {
            class: w.class,
            resource_id: w.resource_id.clone(),
            children: w.children.iter().map(AbstractNode::from_widget).collect(),
        }
    }

    /// Number of nodes in the subtree.
    pub fn subtree_size(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(AbstractNode::subtree_size)
            .sum::<usize>()
    }

    /// Collects the multiset of node signatures used by the similarity
    /// measure: `(depth, class, resource_id)` triples hashed to `u64`.
    pub(crate) fn collect_signatures(&self, depth: u32, out: &mut Vec<u64>) {
        let mut h = DefaultHasher::new();
        depth.hash(&mut h);
        self.class.hash(&mut h);
        self.resource_id.hash(&mut h);
        out.push(h.finish());
        for c in &self.children {
            c.collect_signatures(depth + 1, out);
        }
    }
}

/// A text-free structural abstraction of a screen's widget tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbstractHierarchy {
    root: AbstractNode,
    id: AbstractScreenId,
    signatures: Vec<u64>,
}

impl AbstractHierarchy {
    /// Builds an abstraction from an abstract root node.
    pub fn from_root(root: AbstractNode) -> Self {
        let mut signatures = Vec::with_capacity(root.subtree_size());
        root.collect_signatures(0, &mut signatures);
        signatures.sort_unstable();
        let mut h = DefaultHasher::new();
        signatures.hash(&mut h);
        let id = AbstractScreenId(h.finish());
        AbstractHierarchy {
            root,
            id,
            signatures,
        }
    }

    /// The abstract root node.
    pub fn root(&self) -> &AbstractNode {
        &self.root
    }

    /// Stable hash identity of this abstraction.
    pub fn id(&self) -> AbstractScreenId {
        self.id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.signatures.len()
    }

    /// Sorted multiset of node signatures (for similarity computation).
    pub(crate) fn signatures(&self) -> &[u64] {
        &self.signatures
    }
}

/// Abstracts a concrete hierarchy: keeps structure, classes, resource ids;
/// removes text, enablement, affordances and geometry.
///
/// The abstraction is *idempotent* with respect to text edits: two
/// hierarchies differing only in widget text produce identical abstractions.
pub fn abstract_hierarchy(hierarchy: &UiHierarchy) -> AbstractHierarchy {
    AbstractHierarchy::from_root(AbstractNode::from_widget(hierarchy.root()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{ActionId, ActionKind};

    fn page(text: &str, extra_row: bool) -> UiHierarchy {
        let mut root = Widget::container(WidgetClass::LinearLayout)
            .with_child(Widget::text_view("title", text))
            .with_child(
                Widget::button("add", "Add to bag").with_affordance(ActionId(1), ActionKind::Click),
            );
        if extra_row {
            root = root.with_child(Widget::leaf(WidgetClass::ImageView, "banner"));
        }
        UiHierarchy::new(root)
    }

    #[test]
    fn text_changes_do_not_change_identity() {
        let a = abstract_hierarchy(&page("Red shoes", false));
        let b = abstract_hierarchy(&page("Blue coat, 50% off!", false));
        assert_eq!(a.id(), b.id());
        assert_eq!(a, b);
    }

    #[test]
    fn structural_changes_change_identity() {
        let a = abstract_hierarchy(&page("x", false));
        let b = abstract_hierarchy(&page("x", true));
        assert_ne!(a.id(), b.id());
        assert_eq!(b.node_count(), a.node_count() + 1);
    }

    #[test]
    fn disablement_does_not_change_identity() {
        let mut h = page("x", false);
        let before = abstract_hierarchy(&h);
        h.disable_actions(&[ActionId(1)]);
        let after = abstract_hierarchy(&h);
        assert_eq!(before.id(), after.id());
    }

    #[test]
    fn signatures_are_sorted() {
        let a = abstract_hierarchy(&page("x", true));
        let sigs = a.signatures();
        assert!(sigs.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(sigs.len(), a.node_count());
    }
}
