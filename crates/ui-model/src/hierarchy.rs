//! UI hierarchies — the screen content visible to a testing tool.

use crate::action::{Action, ActionId, ActionKind};
use crate::widget::Widget;

/// A full-screen widget tree, analogous to a `uiautomator dump`.
///
/// The hierarchy is the *only* interface between the app under test and a
/// testing tool: tools enumerate enabled affordances from it, and the Toller
/// enforcement shim disables widgets on it before the tool looks.
#[derive(Debug, Clone, PartialEq)]
pub struct UiHierarchy {
    root: Widget,
}

impl UiHierarchy {
    /// Wraps a widget tree.
    pub fn new(root: Widget) -> Self {
        UiHierarchy { root }
    }

    /// The root widget.
    pub fn root(&self) -> &Widget {
        &self.root
    }

    /// Mutable access to the root widget.
    pub fn root_mut(&mut self) -> &mut Widget {
        &mut self.root
    }

    /// Total number of widgets.
    pub fn node_count(&self) -> usize {
        self.root.subtree_size()
    }

    /// All *enabled* affordances on this screen, in document order.
    ///
    /// This is the action menu a testing tool chooses from; disabled
    /// widgets (blocked entrypoints) do not appear.
    pub fn enabled_actions(&self) -> Vec<(ActionId, ActionKind)> {
        let mut out = Vec::new();
        self.root.visit(&mut |w| {
            if w.enabled {
                if let Some(a) = w.affordance {
                    out.push(a);
                }
            }
        });
        out
    }

    /// All affordances regardless of enablement.
    pub fn all_actions(&self) -> Vec<(ActionId, ActionKind)> {
        let mut out = Vec::new();
        self.root.visit(&mut |w| {
            if let Some(a) = w.affordance {
                out.push(a);
            }
        });
        out
    }

    /// Whether the given action is currently offered (enabled).
    pub fn offers(&self, action: Action) -> bool {
        match action {
            Action::Widget(id) => self.enabled_actions().iter().any(|(a, _)| *a == id),
            Action::Back => true,
            Action::Noop => true,
        }
    }

    /// Disables every widget carrying one of the given action ids.
    ///
    /// Returns the number of widgets disabled. This is the primitive the
    /// Toller shim uses to block UI-subspace entrypoints (paper §5.3).
    pub fn disable_actions(&mut self, blocked: &[ActionId]) -> usize {
        let mut n = 0;
        self.root.visit_mut(&mut |w| {
            if let Some((id, _)) = w.affordance {
                if blocked.contains(&id) && w.enabled {
                    w.enabled = false;
                    n += 1;
                }
            }
        });
        n
    }

    /// Disables every widget whose resource id equals `rid`.
    ///
    /// Returns the number of widgets disabled. This is the *tool-agnostic*
    /// enforcement primitive: TaOPT identifies entrypoint widgets by their
    /// stable resource ids (not by simulator-internal action ids), exactly
    /// as the real Toller matches UI elements in the hierarchy.
    pub fn disable_by_resource_id(&mut self, rid: &str) -> usize {
        let mut n = 0;
        self.root.visit_mut(&mut |w| {
            if w.enabled && w.resource_id.as_deref() == Some(rid) {
                w.enabled = false;
                n += 1;
            }
        });
        n
    }

    /// Finds the widget carrying the given action id.
    pub fn widget_for(&self, id: ActionId) -> Option<&Widget> {
        let mut found: Option<&Widget> = None;
        self.root.visit(&mut |w| {
            if found.is_none() {
                if let Some((a, _)) = w.affordance {
                    if a == id {
                        found = Some(w);
                    }
                }
            }
        });
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::widget::WidgetClass;

    fn screen() -> UiHierarchy {
        UiHierarchy::new(
            Widget::container(WidgetClass::LinearLayout)
                .with_child(
                    Widget::button("buy", "Buy").with_affordance(ActionId(1), ActionKind::Click),
                )
                .with_child(
                    Widget::leaf(WidgetClass::RecyclerView, "list")
                        .with_affordance(ActionId(2), ActionKind::Scroll),
                )
                .with_child(Widget::text_view("title", "Shop")),
        )
    }

    #[test]
    fn enabled_actions_lists_affordances_in_order() {
        let h = screen();
        let ids: Vec<_> = h.enabled_actions().iter().map(|(a, _)| a.0).collect();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn disable_actions_hides_them_from_enumeration() {
        let mut h = screen();
        assert_eq!(h.disable_actions(&[ActionId(1)]), 1);
        let ids: Vec<_> = h.enabled_actions().iter().map(|(a, _)| a.0).collect();
        assert_eq!(ids, vec![2]);
        // All-actions still sees the disabled affordance.
        assert_eq!(h.all_actions().len(), 2);
        // Disabling again is a no-op.
        assert_eq!(h.disable_actions(&[ActionId(1)]), 0);
    }

    #[test]
    fn offers_back_and_noop_always() {
        let h = screen();
        assert!(h.offers(Action::Back));
        assert!(h.offers(Action::Noop));
        assert!(h.offers(Action::Widget(ActionId(1))));
        assert!(!h.offers(Action::Widget(ActionId(99))));
    }

    #[test]
    fn disable_by_resource_id_hides_matching_widgets() {
        let mut h = screen();
        assert_eq!(h.disable_by_resource_id("buy"), 1);
        assert!(!h.offers(Action::Widget(ActionId(1))));
        assert_eq!(h.disable_by_resource_id("buy"), 0, "idempotent");
        assert_eq!(h.disable_by_resource_id("nope"), 0);
    }

    #[test]
    fn widget_for_finds_carrier() {
        let h = screen();
        let w = h.widget_for(ActionId(2)).expect("should find scroll list");
        assert_eq!(w.resource_id.as_deref(), Some("list"));
        assert!(h.widget_for(ActionId(42)).is_none());
    }
}
