//! Tree similarity between abstracted UI hierarchies.
//!
//! Algorithm 1's `CountIn(s, S[p:N])` "calculates the tree similarity of the
//! two abstracted UI hierarchies to determine the times of the appearances
//! of `s`" (§5.2, citing the VET tree-similarity measure). We implement the
//! standard multiset Dice coefficient over `(depth, class, resource-id)`
//! node signatures: cheap, symmetric, bounded in `[0, 1]`, and `1` exactly
//! for structurally identical screens.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use crate::abstraction::AbstractHierarchy;
use crate::trace::TraceEvent;

/// Default similarity above which two abstract screens count as "the same
/// screen" in trace analysis.
pub const DEFAULT_SIMILARITY_THRESHOLD: f64 = 0.9;

/// Shard count of [`SimilarityCache`]: enough that eight concurrent
/// engine analyses rarely meet on one lock, small enough that `len`
/// (which sums shard sizes) stays cheap.
const DEFAULT_SHARDS: usize = 16;

/// One lock-striped shard of the cache map.
type Shard = RwLock<HashMap<(u64, u64), bool>>;

/// A persistent, thread-safe cache of pairwise screen-similarity
/// decisions, keyed by abstract-screen-id pairs.
///
/// One cache serves a whole parallel run: the analyzer re-runs
/// `FindSpace` every few seconds per instance and the distinct-screen
/// population is shared, so cached decisions eliminate the dominant
/// `O(D²)` tree-similarity cost of repeated analyses.
///
/// The map is split into `N` shards, each behind its own `RwLock`,
/// selected by a hash of the (ordered) screen-pair key. Lookups take a
/// shard *read* lock, so concurrent engine analyses over a warm cache
/// never contend; only a miss (one per distinct pair per run) takes the
/// write lock. Because a decision is a pure function of the pair — both
/// hierarchies are immutable once interned — a racy duplicate compute
/// inserts the identical value, so results are independent of thread
/// interleaving (the *racy-insert allowance*: each thread computes a
/// given pair at most once, pinned by the concurrency stress test).
#[derive(Debug)]
pub struct SimilarityCache {
    shards: Box<[Shard]>,
    /// `shards.len() - 1`; shard count is always a power of two.
    mask: u64,
    /// Tree-similarity evaluations performed (cache misses, including
    /// racy duplicates).
    computations: AtomicU64,
    /// Lookups answered from the cache.
    hits: AtomicU64,
}

/// Mixes a pair key into a shard index (SplitMix64 finalizer): the raw
/// abstract ids are near-sequential hashes already, but xor-folding both
/// endpoints through an avalanche keeps sibling pairs off one shard.
fn shard_of(key: (u64, u64), mask: u64) -> usize {
    let mut x = key.0 ^ key.1.rotate_left(32);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    ((x ^ (x >> 31)) & mask) as usize
}

impl Default for SimilarityCache {
    fn default() -> Self {
        Self::new()
    }
}

impl SimilarityCache {
    /// Creates an empty cache with the default shard count.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// Creates an empty cache with `shards` shards (rounded up to a
    /// power of two, minimum 1). `with_shards(1)` is the unsharded
    /// reference the differential tests pin against.
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        SimilarityCache {
            shards: (0..n).map(|_| RwLock::new(HashMap::new())).collect(),
            mask: (n - 1) as u64,
            computations: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }

    /// Creates an empty cache pre-sized for `screens` distinct abstract
    /// screens (one decision per unordered pair, spread over shards).
    pub fn with_screen_capacity(screens: usize) -> Self {
        let cache = Self::new();
        let pairs = screens * screens.saturating_sub(1) / 2;
        let per_shard = pairs / cache.shards.len() + 1;
        for shard in cache.shards.iter() {
            shard
                .write()
                .expect("similarity shard poisoned")
                .reserve(per_shard);
        }
        cache
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of cached pair decisions.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("similarity shard poisoned").len())
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.shards
            .iter()
            .all(|s| s.read().expect("similarity shard poisoned").is_empty())
    }

    /// Tree-similarity evaluations performed so far (cache misses;
    /// includes racy duplicates, so under concurrency this is between
    /// the distinct-pair count and `pairs × threads`).
    pub fn computations(&self) -> u64 {
        self.computations.load(Ordering::Relaxed)
    }

    /// Lookups answered without recomputing.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Whether two events' screens count as "the same screen" at
    /// `threshold`, computing and caching the decision on first ask.
    ///
    /// Takes `&self`: concurrent engines may interleave lookups freely —
    /// the decision for a pair is the same no matter which thread
    /// computes it, so sharing is safe and deterministic.
    pub fn similar(&self, a: &TraceEvent, b: &TraceEvent, threshold: f64) -> bool {
        if a.abstract_id == b.abstract_id {
            return true;
        }
        let key = if a.abstract_id.0 <= b.abstract_id.0 {
            (a.abstract_id.0, b.abstract_id.0)
        } else {
            (b.abstract_id.0, a.abstract_id.0)
        };
        let shard = &self.shards[shard_of(key, self.mask)];
        if let Some(&d) = shard.read().expect("similarity shard poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return d;
        }
        // Miss: compute outside any lock (tree similarity is the
        // expensive part), then publish. A racing thread may have
        // inserted meanwhile — same pair, same decision.
        let decision = tree_similarity(&a.abstraction, &b.abstraction) >= threshold;
        self.computations.fetch_add(1, Ordering::Relaxed);
        shard
            .write()
            .expect("similarity shard poisoned")
            .insert(key, decision);
        decision
    }

    /// Removes every cached pair touching any screen in `screens`
    /// (abstract ids); returns how many entries were evicted. Scoped
    /// eviction for `forget_instance`: decisions involving screens no
    /// surviving instance has seen are dead weight.
    pub fn evict_screens(&self, screens: &BTreeSet<u64>) -> usize {
        if screens.is_empty() {
            return 0;
        }
        let mut evicted = 0;
        for shard in self.shards.iter() {
            let mut map = shard.write().expect("similarity shard poisoned");
            let before = map.len();
            map.retain(|k, _| !screens.contains(&k.0) && !screens.contains(&k.1));
            evicted += before - map.len();
        }
        evicted
    }

    /// Seeds the cache with precomputed pair decisions (e.g. a warm-start
    /// bundle from a previous campaign), skipping pairs already present;
    /// returns how many entries were actually inserted.
    ///
    /// Seeding is a pure accelerator: a decision is a pure function of the
    /// pair, so a pre-seeded entry only skips the compute that would have
    /// produced the identical value.
    pub fn seed<'a>(&self, entries: impl IntoIterator<Item = &'a ((u64, u64), bool)>) -> usize {
        let mut inserted = 0;
        for ((a, b), decision) in entries {
            let key = if a <= b { (*a, *b) } else { (*b, *a) };
            let shard = &self.shards[shard_of(key, self.mask)];
            let mut map = shard.write().expect("similarity shard poisoned");
            if map.insert(key, *decision).is_none() {
                inserted += 1;
            }
        }
        inserted
    }

    /// Deterministic snapshot of every cached decision, merged across
    /// shards in ascending key order — the post-state comparator of the
    /// differential and stress tests (shard layout never leaks into it).
    pub fn snapshot(&self) -> BTreeMap<(u64, u64), bool> {
        let mut out = BTreeMap::new();
        for shard in self.shards.iter() {
            for (k, v) in shard.read().expect("similarity shard poisoned").iter() {
                out.insert(*k, *v);
            }
        }
        out
    }
}

/// Computes the tree similarity of two abstracted hierarchies in `[0, 1]`.
///
/// The measure is the Dice coefficient `2·|A ∩ B| / (|A| + |B|)` of the
/// multisets of node signatures. It is symmetric, reflexive (identical
/// trees score 1.0), and 0.0 for trees sharing no node signature.
///
/// # Examples
///
/// ```
/// use taopt_ui_model::{UiHierarchy, Widget, WidgetClass};
/// use taopt_ui_model::abstraction::abstract_hierarchy;
/// use taopt_ui_model::similarity::tree_similarity;
///
/// let a = abstract_hierarchy(&UiHierarchy::new(Widget::container(WidgetClass::LinearLayout)));
/// assert_eq!(tree_similarity(&a, &a), 1.0);
/// ```
pub fn tree_similarity(a: &AbstractHierarchy, b: &AbstractHierarchy) -> f64 {
    // Fast path: identical abstractions.
    if a.id() == b.id() {
        return 1.0;
    }
    let (sa, sb) = (a.signatures(), b.signatures());
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    // Sorted-multiset intersection size.
    let mut i = 0;
    let mut j = 0;
    let mut common = 0usize;
    while i < sa.len() && j < sb.len() {
        match sa[i].cmp(&sb[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                common += 1;
                i += 1;
                j += 1;
            }
        }
    }
    2.0 * common as f64 / (sa.len() + sb.len()) as f64
}

/// The paper's `CountIn(s, window)`: how many screens in `window` are
/// tree-similar to `s` at or above `threshold`.
pub fn count_in(
    s: &AbstractHierarchy,
    window: impl IntoIterator<Item = impl AsRef<AbstractHierarchy>>,
    threshold: f64,
) -> usize {
    window
        .into_iter()
        .filter(|x| tree_similarity(s, x.as_ref()) >= threshold)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstraction::abstract_hierarchy;
    use crate::hierarchy::UiHierarchy;
    use crate::widget::{Widget, WidgetClass};

    fn screen(rows: usize, rid: &str) -> AbstractHierarchy {
        let mut root = Widget::container(WidgetClass::LinearLayout);
        for i in 0..rows {
            root = root.with_child(Widget::text_view(&format!("{rid}_{i}"), "txt"));
        }
        abstract_hierarchy(&UiHierarchy::new(root))
    }

    #[test]
    fn identical_trees_score_one() {
        let a = screen(4, "row");
        let b = screen(4, "row");
        assert_eq!(tree_similarity(&a, &b), 1.0);
    }

    #[test]
    fn disjoint_resource_ids_score_low() {
        let a = screen(4, "shop");
        let b = screen(4, "acct");
        // Roots share a signature; rows do not.
        let s = tree_similarity(&a, &b);
        assert!(s < 0.5, "similarity {s} should be low");
        assert!(s > 0.0, "roots still match");
    }

    #[test]
    fn similarity_is_symmetric_and_bounded() {
        let a = screen(3, "x");
        let b = screen(7, "x");
        let ab = tree_similarity(&a, &b);
        let ba = tree_similarity(&b, &a);
        assert_eq!(ab, ba);
        assert!((0.0..=1.0).contains(&ab));
    }

    #[test]
    fn near_duplicate_screens_score_high() {
        // Same rows, one extra banner: e.g. a list screen after scrolling.
        let a = screen(10, "item");
        let b = {
            let mut root = Widget::container(WidgetClass::LinearLayout);
            for i in 0..10 {
                root = root.with_child(Widget::text_view(&format!("item_{i}"), "other"));
            }
            root = root.with_child(Widget::leaf(WidgetClass::ImageView, "ad"));
            abstract_hierarchy(&UiHierarchy::new(root))
        };
        assert!(tree_similarity(&a, &b) > 0.9);
    }

    #[test]
    fn count_in_respects_threshold() {
        let probe = screen(4, "shop");
        let window = [
            std::sync::Arc::new(screen(4, "shop")),
            std::sync::Arc::new(screen(4, "acct")),
            std::sync::Arc::new(screen(4, "shop")),
        ];
        assert_eq!(count_in(&probe, window.iter().cloned(), 0.9), 2);
        assert_eq!(count_in(&probe, window.iter().cloned(), 0.01), 3);
    }
}
