//! Tree similarity between abstracted UI hierarchies.
//!
//! Algorithm 1's `CountIn(s, S[p:N])` "calculates the tree similarity of the
//! two abstracted UI hierarchies to determine the times of the appearances
//! of `s`" (§5.2, citing the VET tree-similarity measure). We implement the
//! standard multiset Dice coefficient over `(depth, class, resource-id)`
//! node signatures: cheap, symmetric, bounded in `[0, 1]`, and `1` exactly
//! for structurally identical screens.

use crate::abstraction::AbstractHierarchy;

/// Default similarity above which two abstract screens count as "the same
/// screen" in trace analysis.
pub const DEFAULT_SIMILARITY_THRESHOLD: f64 = 0.9;

/// Computes the tree similarity of two abstracted hierarchies in `[0, 1]`.
///
/// The measure is the Dice coefficient `2·|A ∩ B| / (|A| + |B|)` of the
/// multisets of node signatures. It is symmetric, reflexive (identical
/// trees score 1.0), and 0.0 for trees sharing no node signature.
///
/// # Examples
///
/// ```
/// use taopt_ui_model::{UiHierarchy, Widget, WidgetClass};
/// use taopt_ui_model::abstraction::abstract_hierarchy;
/// use taopt_ui_model::similarity::tree_similarity;
///
/// let a = abstract_hierarchy(&UiHierarchy::new(Widget::container(WidgetClass::LinearLayout)));
/// assert_eq!(tree_similarity(&a, &a), 1.0);
/// ```
pub fn tree_similarity(a: &AbstractHierarchy, b: &AbstractHierarchy) -> f64 {
    // Fast path: identical abstractions.
    if a.id() == b.id() {
        return 1.0;
    }
    let (sa, sb) = (a.signatures(), b.signatures());
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    // Sorted-multiset intersection size.
    let mut i = 0;
    let mut j = 0;
    let mut common = 0usize;
    while i < sa.len() && j < sb.len() {
        match sa[i].cmp(&sb[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                common += 1;
                i += 1;
                j += 1;
            }
        }
    }
    2.0 * common as f64 / (sa.len() + sb.len()) as f64
}

/// The paper's `CountIn(s, window)`: how many screens in `window` are
/// tree-similar to `s` at or above `threshold`.
pub fn count_in(
    s: &AbstractHierarchy,
    window: impl IntoIterator<Item = impl AsRef<AbstractHierarchy>>,
    threshold: f64,
) -> usize {
    window
        .into_iter()
        .filter(|x| tree_similarity(s, x.as_ref()) >= threshold)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstraction::abstract_hierarchy;
    use crate::hierarchy::UiHierarchy;
    use crate::widget::{Widget, WidgetClass};

    fn screen(rows: usize, rid: &str) -> AbstractHierarchy {
        let mut root = Widget::container(WidgetClass::LinearLayout);
        for i in 0..rows {
            root = root.with_child(Widget::text_view(&format!("{rid}_{i}"), "txt"));
        }
        abstract_hierarchy(&UiHierarchy::new(root))
    }

    #[test]
    fn identical_trees_score_one() {
        let a = screen(4, "row");
        let b = screen(4, "row");
        assert_eq!(tree_similarity(&a, &b), 1.0);
    }

    #[test]
    fn disjoint_resource_ids_score_low() {
        let a = screen(4, "shop");
        let b = screen(4, "acct");
        // Roots share a signature; rows do not.
        let s = tree_similarity(&a, &b);
        assert!(s < 0.5, "similarity {s} should be low");
        assert!(s > 0.0, "roots still match");
    }

    #[test]
    fn similarity_is_symmetric_and_bounded() {
        let a = screen(3, "x");
        let b = screen(7, "x");
        let ab = tree_similarity(&a, &b);
        let ba = tree_similarity(&b, &a);
        assert_eq!(ab, ba);
        assert!((0.0..=1.0).contains(&ab));
    }

    #[test]
    fn near_duplicate_screens_score_high() {
        // Same rows, one extra banner: e.g. a list screen after scrolling.
        let a = screen(10, "item");
        let b = {
            let mut root = Widget::container(WidgetClass::LinearLayout);
            for i in 0..10 {
                root = root.with_child(Widget::text_view(&format!("item_{i}"), "other"));
            }
            root = root.with_child(Widget::leaf(WidgetClass::ImageView, "ad"));
            abstract_hierarchy(&UiHierarchy::new(root))
        };
        assert!(tree_similarity(&a, &b) > 0.9);
    }

    #[test]
    fn count_in_respects_threshold() {
        let probe = screen(4, "shop");
        let window = [
            std::sync::Arc::new(screen(4, "shop")),
            std::sync::Arc::new(screen(4, "acct")),
            std::sync::Arc::new(screen(4, "shop")),
        ];
        assert_eq!(count_in(&probe, window.iter().cloned(), 0.9), 2);
        assert_eq!(count_in(&probe, window.iter().cloned(), 0.01), 3);
    }
}
