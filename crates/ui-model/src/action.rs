//! UI actions — the inputs a testing tool can inject.

use std::fmt;

/// Identifier of an interactive affordance on a screen.
///
/// An `ActionId` names one (widget, gesture) pair defined by the app under
/// test; firing it may move the app to another screen according to the
/// stochastic transition graph. Ids are unique *within an app*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ActionId(pub u32);

impl fmt::Display for ActionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// The gesture class of an action, mirroring the event types real tools
/// inject (Monkey events, UiAutomator interactions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ActionKind {
    /// A tap on a clickable widget.
    Click,
    /// A long press.
    LongClick,
    /// A scroll or fling on a scrollable container.
    Scroll,
    /// Typing text into an editable field.
    SetText,
    /// A horizontal swipe (e.g. view-pager page change).
    Swipe,
}

impl fmt::Display for ActionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ActionKind::Click => "click",
            ActionKind::LongClick => "long-click",
            ActionKind::Scroll => "scroll",
            ActionKind::SetText => "set-text",
            ActionKind::Swipe => "swipe",
        };
        f.write_str(s)
    }
}

/// One input injected by a testing tool.
///
/// `Widget` actions address an enabled affordance visible on the current
/// screen; `Back` is the global Android Back key (always available);
/// `Noop` models events that hit nothing (e.g. Monkey taps on dead
/// coordinates) and merely consume time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Interact with the widget owning this action id.
    Widget(ActionId),
    /// Press the system Back key.
    Back,
    /// An input that hit no interactive element.
    Noop,
}

impl Action {
    /// The action id, if this is a widget interaction.
    pub fn widget_id(&self) -> Option<ActionId> {
        match self {
            Action::Widget(id) => Some(*id),
            _ => None,
        }
    }

    /// Whether this input can change the UI state.
    pub fn is_effective(&self) -> bool {
        !matches!(self, Action::Noop)
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Widget(id) => write!(f, "widget({id})"),
            Action::Back => f.write_str("back"),
            Action::Noop => f.write_str("noop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widget_id_extraction() {
        assert_eq!(Action::Widget(ActionId(7)).widget_id(), Some(ActionId(7)));
        assert_eq!(Action::Back.widget_id(), None);
        assert_eq!(Action::Noop.widget_id(), None);
    }

    #[test]
    fn effectiveness() {
        assert!(Action::Widget(ActionId(0)).is_effective());
        assert!(Action::Back.is_effective());
        assert!(!Action::Noop.is_effective());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Action::Widget(ActionId(3)).to_string(), "widget(a3)");
        assert_eq!(Action::Back.to_string(), "back");
        assert_eq!(ActionKind::LongClick.to_string(), "long-click");
    }
}
