//! Error types for the UI substrate.

use std::error::Error;
use std::fmt;

use crate::action::ActionId;
use crate::screen::ScreenId;

/// Errors produced while manipulating UI-model values.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum UiModelError {
    /// An action id was referenced that does not exist on the screen.
    UnknownAction(ActionId),
    /// A screen id was referenced that does not exist in the graph.
    UnknownScreen(ScreenId),
    /// A probability was outside `[0, 1]` or a distribution did not sum to 1.
    InvalidProbability(f64),
    /// A trace operation needed a non-empty trace.
    EmptyTrace,
}

impl fmt::Display for UiModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UiModelError::UnknownAction(id) => write!(f, "unknown action id {id}"),
            UiModelError::UnknownScreen(id) => write!(f, "unknown screen id {id}"),
            UiModelError::InvalidProbability(p) => {
                write!(f, "invalid probability {p}: must lie in [0, 1]")
            }
            UiModelError::EmptyTrace => write!(f, "operation requires a non-empty trace"),
        }
    }
}

impl Error for UiModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            UiModelError::UnknownAction(ActionId(3)),
            UiModelError::UnknownScreen(ScreenId(9)),
            UiModelError::InvalidProbability(1.5),
            UiModelError::EmptyTrace,
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<UiModelError>();
    }
}
