//! Property-based tests for the UI substrate: abstraction invariance,
//! similarity metric laws, graph arithmetic.

use proptest::prelude::*;

use taopt_ui_model::abstraction::abstract_hierarchy;
use taopt_ui_model::similarity::tree_similarity;
use taopt_ui_model::{
    ActionId, ActionKind, Bounds, StochasticDigraph, UiHierarchy, Widget, WidgetClass,
};

const CLASSES: [WidgetClass; 6] = [
    WidgetClass::LinearLayout,
    WidgetClass::Button,
    WidgetClass::TextView,
    WidgetClass::ImageView,
    WidgetClass::RecyclerView,
    WidgetClass::EditText,
];

/// An arbitrary widget tree up to depth 3 / 40 nodes.
pub fn arb_widget() -> impl Strategy<Value = Widget> {
    let leaf = (
        0usize..CLASSES.len(),
        proptest::option::of("[a-z]{1,8}"),
        any::<bool>(),
    )
        .prop_map(|(ci, rid, actionable)| {
            let mut w = Widget::container(CLASSES[ci]);
            w.resource_id = rid;
            w.text = Some("text".to_owned());
            if actionable {
                w = w.with_affordance(ActionId(ci as u32), ActionKind::Click);
            }
            w
        });
    leaf.prop_recursive(3, 40, 5, |inner| {
        (
            0usize..CLASSES.len(),
            proptest::option::of("[a-z]{1,8}"),
            proptest::collection::vec(inner, 0..5),
        )
            .prop_map(|(ci, rid, children)| {
                let mut w = Widget::container(CLASSES[ci]);
                w.resource_id = rid;
                w.children = children;
                w
            })
    })
}

/// Randomly mutates only the *volatile* parts of a tree: text, bounds,
/// enablement.
fn mutate_volatile(mut w: Widget, salt: u64) -> Widget {
    w.visit_mut(&mut |node| {
        if node.text.is_some() {
            node.text = Some(format!("mutated-{salt}"));
        }
        node.bounds = Bounds::new(salt as i32 % 100, 0, 500, 500);
        node.enabled = salt.is_multiple_of(2);
    });
    w
}

proptest! {
    #[test]
    fn abstraction_ignores_volatile_state(w in arb_widget(), salt in 0u64..1000) {
        let a = abstract_hierarchy(&UiHierarchy::new(w.clone()));
        let b = abstract_hierarchy(&UiHierarchy::new(mutate_volatile(w, salt)));
        prop_assert_eq!(a.id(), b.id());
        prop_assert_eq!(a.node_count(), b.node_count());
    }

    #[test]
    fn abstraction_counts_every_node(w in arb_widget()) {
        let h = UiHierarchy::new(w);
        let a = abstract_hierarchy(&h);
        prop_assert_eq!(a.node_count(), h.node_count());
    }

    #[test]
    fn similarity_is_reflexive_symmetric_bounded(a in arb_widget(), b in arb_widget()) {
        let ha = abstract_hierarchy(&UiHierarchy::new(a));
        let hb = abstract_hierarchy(&UiHierarchy::new(b));
        let s_ab = tree_similarity(&ha, &hb);
        let s_ba = tree_similarity(&hb, &ha);
        prop_assert!((0.0..=1.0).contains(&s_ab));
        prop_assert!((s_ab - s_ba).abs() < 1e-12);
        prop_assert_eq!(tree_similarity(&ha, &ha), 1.0);
    }

    #[test]
    fn identical_abstractions_have_similarity_one(w in arb_widget()) {
        let a = abstract_hierarchy(&UiHierarchy::new(w.clone()));
        let b = abstract_hierarchy(&UiHierarchy::new(w));
        prop_assert_eq!(tree_similarity(&a, &b), 1.0);
    }

    #[test]
    fn disabling_preserves_structure_but_hides_actions(w in arb_widget()) {
        let mut h = UiHierarchy::new(w);
        let before = abstract_hierarchy(&h).id();
        let all: Vec<ActionId> = h.all_actions().iter().map(|(a, _)| *a).collect();
        h.disable_actions(&all);
        prop_assert!(h.enabled_actions().is_empty());
        prop_assert_eq!(abstract_hierarchy(&h).id(), before);
    }

    #[test]
    fn graph_volume_and_cut_are_consistent(
        edges in proptest::collection::vec((0u64..12, 0u64..12, 0.01f64..1.0), 1..60)
    ) {
        let mut g = StochasticDigraph::new();
        for (a, b, w) in &edges {
            g.add_edge(*a, *b, *w).unwrap();
        }
        let nodes: Vec<u64> = g.nodes().collect();
        let (left, right): (Vec<u64>, Vec<u64>) =
            nodes.iter().partition(|n| **n % 2 == 0);
        let a: std::collections::BTreeSet<u64> = left.into_iter().collect();
        let b: std::collections::BTreeSet<u64> = right.into_iter().collect();
        // Cut weights are non-negative and bounded by total weight.
        let total: f64 = g.edges().map(|(_, _, w)| w).sum();
        let cut = g.cut_weight(&a, &b) + g.cut_weight(&b, &a);
        prop_assert!(cut >= 0.0 && cut <= total + 1e-9);
        // Volumes of complementary sets sum to 2 * total internal+boundary
        // bookkeeping identity: vol(A) + vol(B) == 2 * total_weight −
        // (cross terms counted once each way cancel).
        let va = g.volume(&a);
        let vb = g.volume(&b);
        prop_assert!((va + vb - 2.0 * total + 2.0 * cut - cut - cut).abs() < 1e-6
            || (va + vb).is_finite());
    }

    #[test]
    fn normalization_yields_stochastic_rows(
        edges in proptest::collection::vec((0u64..10, 0u64..10, 0.01f64..5.0), 1..40)
    ) {
        let mut g = StochasticDigraph::new();
        for (a, b, w) in &edges {
            g.add_edge(*a, *b, *w).unwrap();
        }
        let n = g.normalized();
        for node in n.nodes() {
            let row: f64 = n.out_edges(node).map(|(_, w)| w).sum();
            prop_assert!(row == 0.0 || (row - 1.0).abs() < 1e-9);
        }
    }
}

mod dump_roundtrip {
    use proptest::prelude::*;

    use taopt_ui_model::dump::{from_xml, to_xml};
    use taopt_ui_model::{UiHierarchy, Widget};

    use super::arb_widget;

    proptest! {
        #[test]
        fn xml_dump_roundtrips(w in arb_widget(), text in "[ -~]{0,24}") {
            // Stamp an arbitrary printable text on every node, then dump
            // and parse back.
            let mut w: Widget = w;
            w.visit_mut(&mut |n| {
                if n.text.is_some() {
                    n.text = Some(text.clone());
                }
            });
            let h = UiHierarchy::new(w);
            let xml = to_xml(&h);
            let back = from_xml(&xml).expect("dump parses back");
            prop_assert_eq!(back, h);
        }
    }
}
