//! The paper's motivating example (§2) as a hand-built app: an online
//! shopping app whose *Shopping* and *Account Settings* functionalities
//! are loosely coupled, connected only through the main tab bar.
//!
//! The example shows the entire TaOPT mechanism end to end on a space
//! small enough to read: the trace analyzer discovers the two subspaces,
//! the coordinator dedicates each to one device, and the tab button
//! "leading to SearchTabsActivity" is disabled on the other device —
//! exactly the paper's Figure 2 narrative.
//!
//! ```sh
//! cargo run --release --example shopping_session
//! ```

use std::sync::Arc;

use taopt::session::{ParallelSession, RunMode, SessionConfig};
use taopt_app_sim::{App, AppBuilder};
use taopt_tools::ToolKind;
use taopt_ui_model::{ActionKind, VirtualDuration};

/// Builds the Figure-2 app: MainTabs, a shopping cluster
/// (SearchTabs → SelectList → GoodsDetail → ShopBag/WishList) and an
/// account cluster (UserServiceList → Setting/Profile).
fn shopping_app() -> App {
    let mut b = AppBuilder::new("FigTwoShop");
    let main_f = b.add_functionality("Main");
    let shop_f = b.add_functionality("Shopping");
    let acct_f = b.add_functionality("AccountSettings");

    // Activities deliberately interleave the clusters (the paper's point
    // about why activity-granularity partitioning fails).
    let act_main = b.add_activity();
    let act_tabs = b.add_activity();
    let act_detail = b.add_activity();
    let act_settings = b.add_activity();

    let main_tabs = b.add_screen(act_main, main_f, "MainTabs");
    b.mark_entry(main_tabs);

    // Shopping cluster.
    let search_tabs = b.add_screen(act_tabs, shop_f, "SearchTabs");
    b.mark_entry(search_tabs);
    let select_list = b.add_screen(act_tabs, shop_f, "SelectList");
    let goods_detail = b.add_screen(act_detail, shop_f, "GoodsDetail");
    let shop_bag = b.add_screen(act_detail, shop_f, "ShopBag");
    let wish_list = b.add_screen(act_detail, shop_f, "WishList");

    // Account cluster.
    let user_services = b.add_screen(act_settings, acct_f, "UserServiceList");
    b.mark_entry(user_services);
    let setting = b.add_screen(act_settings, acct_f, "Setting");
    let profile = b.add_screen(act_main, acct_f, "Profile");

    // Hub tabs: the loose-coupling boundary.
    b.add_click(main_tabs, search_tabs, "tab_search", "Shop");
    b.add_click(main_tabs, user_services, "tab_account", "Account");

    // Dense intra-cluster transitions (shopping).
    b.add_click(search_tabs, select_list, "btn_browse", "Browse");
    b.add_click(select_list, goods_detail, "item_row", "Red shoes");
    b.add_click(goods_detail, shop_bag, "btn_add_bag", "Add to bag");
    b.add_click(goods_detail, wish_list, "btn_wish", "Wish");
    b.add_click(shop_bag, select_list, "btn_continue", "Keep shopping");
    b.add_click(wish_list, goods_detail, "wish_item", "Open wish");
    b.add_click(search_tabs, main_tabs, "shop_home", "Home");
    b.add_action(select_list, ActionKind::Scroll, "shop_list", "", Vec::new());

    // Dense intra-cluster transitions (account).
    b.add_click(user_services, setting, "row_settings", "Settings");
    b.add_click(user_services, profile, "row_profile", "Profile");
    b.add_click(setting, profile, "btn_profile", "Edit profile");
    b.add_click(profile, user_services, "btn_done", "Done");
    b.add_click(user_services, main_tabs, "acct_home", "Home");
    b.add_action(setting, ActionKind::SetText, "edit_name", "", Vec::new());

    // Methods: checkout flow spans two activities.
    for screen in [
        main_tabs,
        search_tabs,
        select_list,
        goods_detail,
        shop_bag,
        wish_list,
        user_services,
        setting,
        profile,
    ] {
        let m = b.alloc_methods(25);
        b.set_screen_methods(screen, m);
    }
    let checkout = b.alloc_methods(40);
    b.add_flow(vec![select_list, goods_detail, shop_bag], checkout);
    let startup = b.alloc_methods(120);
    b.set_startup_methods(startup);

    b.set_start(main_tabs);
    b.build().expect("figure-2 app is well-formed")
}

fn main() {
    let app = Arc::new(shopping_app());
    println!(
        "Figure-2 shopping app: {} screens across {} activities",
        app.screen_count(),
        app.activities().len()
    );

    let config = SessionConfig {
        instances: 2,
        duration: VirtualDuration::from_mins(20),
        analyzer: {
            let mut a = taopt::analyzer::AnalyzerConfig::duration_mode();
            a.find_space.l_min = VirtualDuration::from_secs(60);
            a.min_subspace_screens = 3;
            a
        },
        ..SessionConfig::new(ToolKind::Monkey, RunMode::TaoptDuration)
    };
    let result = ParallelSession::run(Arc::clone(&app), &config);

    println!(
        "\ncovered {} / {} methods with {} instances",
        result.union_coverage(),
        app.method_count(),
        result.instances.len()
    );
    println!("\nidentified subspaces:");
    for s in result.subspaces.iter().filter(|s| s.confirmed) {
        println!(
            "  {} — {} screens, reporters {:?}, dedicated to {:?}",
            s.id,
            s.screens.len(),
            s.reporters,
            s.owner
        );
        for e in &s.entrypoints {
            println!(
                "    entry widget `{}` (disabled on every other device)",
                e.widget_rid
            );
        }
    }
    println!("\ncoordinator log (first 10 events):");
    for e in result.coordinator_events.iter().take(10) {
        println!("  {e}");
    }
}
