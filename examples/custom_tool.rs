//! Tool-agnosticism demonstrated: plug a *custom* testing tool into the
//! stack and let TaOPT coordinate it without knowing anything about it.
//!
//! TaOPT's contract with the tool is exactly two observable surfaces:
//! what the tool *sees* (enforcement-filtered UI hierarchies) and what it
//! *does* (the monitored transitions). The coordinator code path never
//! branches on the tool, so a tool written after TaOPT still benefits —
//! the paper's central claim.
//!
//! ```sh
//! cargo run --release --example custom_tool
//! ```

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use taopt::session::SessionConfig;
use taopt_app_sim::{generate_app, App, GeneratorConfig};
use taopt_device::DeviceId;
use taopt_toller::{InstanceId, InstrumentedInstance};
use taopt_tools::TestingTool;
use taopt_ui_model::{Action, ActionId, ScreenObservation, VirtualDuration, VirtualTime};

/// A depth-first prober: always clicks the *last* enabled widget (deepest
/// in document order), backing out once per screen revisit. Deliberately
/// unlike Monkey/Ape/WCTester.
#[derive(Debug)]
struct DepthProber {
    rng: StdRng,
    last_screen: Option<taopt_ui_model::AbstractScreenId>,
    revisits: u32,
}

impl DepthProber {
    fn new(seed: u64) -> Self {
        DepthProber {
            rng: StdRng::seed_from_u64(seed),
            last_screen: None,
            revisits: 0,
        }
    }
}

impl TestingTool for DepthProber {
    fn name(&self) -> &'static str {
        "DepthProber"
    }

    fn next_action(&mut self, obs: &ScreenObservation) -> Action {
        let enabled = obs.enabled_actions();
        if self.last_screen == Some(obs.abstract_id()) {
            self.revisits += 1;
            if self.revisits > 3 {
                self.revisits = 0;
                return Action::Back;
            }
        } else {
            self.revisits = 0;
        }
        self.last_screen = Some(obs.abstract_id());
        match enabled.len() {
            0 => Action::Back,
            n => {
                // Bias towards the deepest affordances, with some noise.
                let idx = if self.rng.gen::<f64>() < 0.7 {
                    n - 1
                } else {
                    self.rng.gen_range(0..n)
                };
                let (id, _): (ActionId, _) = enabled[idx];
                Action::Widget(id)
            }
        }
    }
}

/// Runs one instrumented instance for `minutes`, with the block list left
/// empty (baseline conditions), and reports coverage.
fn solo_run(app: Arc<App>, minutes: u64, seed: u64) -> usize {
    let mut inst = InstrumentedInstance::boot(
        InstanceId(0),
        DeviceId(0),
        app,
        Box::new(DepthProber::new(seed)),
        seed,
        VirtualTime::ZERO,
    );
    inst.run_until(VirtualTime::ZERO + VirtualDuration::from_mins(minutes));
    inst.emulator().coverage().count()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = Arc::new(generate_app(&GeneratorConfig::industrial(
        "CustomToolDemo",
        5,
    ))?);

    // The custom tool runs standalone through the same Toller shim...
    let covered = solo_run(Arc::clone(&app), 10, 1);
    println!("DepthProber alone, 10 min: {covered} methods");

    // ...and the full TaOPT session machinery accepts any ToolKind; for a
    // custom tool we drive the instrumented instances and the coordinator
    // directly, exactly as `taopt::session` does internally.
    use taopt::coordinator::TestCoordinator;
    let cfg = SessionConfig::new(
        taopt_tools::ToolKind::Monkey,
        taopt::session::RunMode::TaoptDuration,
    );
    let mut coordinator = TestCoordinator::new(cfg.analyzer.clone());
    let mut instances: Vec<InstrumentedInstance> = (0..3)
        .map(|i| {
            let inst = InstrumentedInstance::boot(
                InstanceId(i),
                DeviceId(i),
                Arc::clone(&app),
                Box::new(DepthProber::new(100 + i as u64)),
                100 + i as u64,
                VirtualTime::ZERO,
            );
            coordinator.register_instance(inst.id(), inst.blocklist());
            inst
        })
        .collect();

    let end = VirtualTime::ZERO + VirtualDuration::from_mins(10);
    let mut now = VirtualTime::ZERO;
    while now < end {
        now += VirtualDuration::from_secs(10);
        for inst in instances.iter_mut() {
            inst.run_until(now.min(end));
            coordinator
                .process_trace(inst.id(), inst.trace(), now)
                .expect("analyzer-reported subspaces are always known");
        }
    }
    let union: std::collections::BTreeSet<_> = instances
        .iter()
        .flat_map(|i| i.emulator().coverage().covered().iter().copied())
        .collect();
    let confirmed = coordinator.analyzer().confirmed().count();
    println!(
        "3 coordinated DepthProber instances, 10 min: {} methods, {} subspaces dedicated",
        union.len(),
        confirmed
    );
    println!(
        "TaOPT never inspected the tool: the same coordinator drove a tool it has never seen."
    );
    Ok(())
}
