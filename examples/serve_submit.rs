//! Control plane end to end: start two farm shards behind the network
//! API, submit a campaign over the wire, preempt and migrate it
//! mid-flight from shard A to shard B, and check the result is
//! byte-identical to the uninterrupted in-process run.
//!
//! ```sh
//! cargo run --release --example serve_submit
//! ```

use std::time::Duration;

use taopt::campaign::run_campaign;
use taopt::experiments::ExperimentScale;
use taopt::RunMode;
use taopt_server::{migrate, serve, Client, ServerConfig};
use taopt_service::{AppSource, AppSpec, CampaignService, CampaignSpec, ServiceConfig};
use taopt_tools::ToolKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A campaign spec: two catalog apps under different tools. The
    //    spec is the campaign's complete, serializable input — which is
    //    what makes checkpoints small and migration possible.
    let mut scale = ExperimentScale::quick();
    scale.duration = scale.duration * 4; // long enough to migrate mid-run
    let spec = CampaignSpec::new(
        "wire-demo",
        vec![
            AppSpec {
                source: AppSource::Catalog("Zedge".to_owned()),
                tool: ToolKind::Ape,
                mode: RunMode::TaoptDuration,
                seed: 7,
            },
            AppSpec {
                source: AppSource::Catalog("Quizlet".to_owned()),
                tool: ToolKind::Monkey,
                mode: RunMode::TaoptDuration,
                seed: 11,
            },
        ],
        scale,
    );

    // The uninterrupted reference, straight through the campaign runtime.
    let (apps, config) = spec.build()?;
    let reference = run_campaign(apps, &config).coverage_report();

    // 2. Two shards: each a durable campaign service behind a loopback
    //    server on an ephemeral port.
    let base = std::env::temp_dir().join(format!("taopt-serve-submit-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let shard = |name: &str| -> Result<_, Box<dyn std::error::Error>> {
        let mut config = ServiceConfig::new(base.join(name));
        config.checkpoint_every = 2;
        let service = CampaignService::start(config)?;
        let handle = serve(service, ServerConfig::new("127.0.0.1:0"))?;
        let client = Client::new(handle.addr());
        Ok((handle, client))
    };
    let (handle_a, a) = shard("shard-a")?;
    let (handle_b, b) = shard("shard-b")?;
    println!("shard A on {}, shard B on {}", a.addr(), b.addr());

    // 3. Submit over the wire and let it get provably mid-flight.
    let id = a.submit(&spec, 5)?;
    println!("submitted campaign {} to shard A", id.0);
    loop {
        match a.status(id)? {
            taopt_service::CampaignStatus::Running { round } if round >= 2 => break,
            taopt_service::CampaignStatus::Done => {
                println!("campaign finished before the migration demo could preempt it");
                break;
            }
            _ => std::thread::yield_now(),
        }
    }

    // 4. Migrate A → B. Export preempts the campaign at its next round
    //    boundary, checkpoints it, and detaches it from A (it now exists
    //    only as the checkpoint bytes); import admits it on B, where it
    //    resumes by replay with the digest verified.
    let new_id = migrate(&a, &b, id)?;
    println!(
        "migrated: shard A now answers {:?}, shard B runs it as campaign {}",
        a.status(id).unwrap_err().status(),
        new_id.0
    );

    // 5. The migrated campaign finishes byte-identical to the run that
    //    never moved.
    let status = b.wait(new_id, Duration::from_secs(600))?;
    let report = b.result(new_id)?;
    println!("shard B finished with {status:?}");
    assert_eq!(report, reference, "migrated run must be byte-identical");
    println!(
        "report is byte-identical to the uninterrupted in-process run \
         ({} bytes)",
        report.len()
    );

    // 6. Graceful end: drain checkpoints everything and stops admission.
    let drained = b.drain()?;
    println!("drained shard B ({} campaigns checkpointed)", drained.len());
    handle_a.stop().shutdown();
    handle_b.stop().shutdown();
    let _ = std::fs::remove_dir_all(&base);
    Ok(())
}
