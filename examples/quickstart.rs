//! Quickstart: run TaOPT-coordinated parallel testing on a generated app
//! and compare it against the uncoordinated baseline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use taopt::session::{ParallelSession, RunMode, SessionConfig};
use taopt_app_sim::{generate_app, GeneratorConfig};
use taopt_tools::ToolKind;
use taopt_ui_model::VirtualDuration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. An App Under Test: a mid-sized synthetic app with loosely coupled
    //    functionality clusters (see taopt_app_sim::generator for the
    //    GS-LD structure the generator produces).
    let app = Arc::new(generate_app(&GeneratorConfig::industrial("QuickMart", 42))?);
    println!(
        "app {} — {} screens, {} methods, {} functionalities",
        app.name(),
        app.screen_count(),
        app.method_count(),
        app.functionalities().len()
    );

    // 2. A 15-virtual-minute parallel run on 4 devices, with and without
    //    TaOPT coordinating the Monkey instances.
    for mode in [RunMode::Baseline, RunMode::TaoptDuration] {
        let config = SessionConfig {
            instances: 4,
            duration: VirtualDuration::from_mins(15),
            ..SessionConfig::new(ToolKind::Monkey, mode)
        };
        let result = ParallelSession::run(Arc::clone(&app), &config);
        println!(
            "\n{}: covered {} / {} methods ({:.1}%), {} unique crashes, \
             machine time {}",
            mode.label(),
            result.union_coverage(),
            app.method_count(),
            100.0 * result.union_coverage() as f64 / app.method_count() as f64,
            result.unique_crashes().len(),
            result.machine_time,
        );
        if mode.uses_taopt() {
            let confirmed: Vec<_> = result.subspaces.iter().filter(|s| s.confirmed).collect();
            println!(
                "  identified {} loosely coupled UI subspaces:",
                confirmed.len()
            );
            for s in confirmed.iter().take(6) {
                println!(
                    "    {}: {} screens, entry via {:?}, dedicated to {:?}",
                    s.id,
                    s.screens.len(),
                    s.entrypoints
                        .first()
                        .map(|e| e.widget_rid.as_str())
                        .unwrap_or("?"),
                    s.owner,
                );
            }
        }
    }
    Ok(())
}
