//! Beyond GUI testing (paper §7): the subspace machinery on a generic
//! event-driven system. The paper argues the approach "can be adapted to
//! any event-driven system where the program state space can be
//! partitioned based on event transitions — examples include network
//! protocols and distributed systems".
//!
//! Here the "app" is a toy network protocol whose state space has two
//! loosely coupled regions (connection management vs. data transfer,
//! bridged only by the established state). We walk it, feed the event
//! trace to `FindSpace` and the offline partitioner, and recover the two
//! regions.
//!
//! ```sh
//! cargo run --release --example event_driven
//! ```

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use taopt::findspace::{find_space, FindSpaceConfig};
use taopt::partition::{partition_traces, PartitionConfig};
use taopt_ui_model::abstraction::{AbstractHierarchy, AbstractNode};
use taopt_ui_model::{
    Action, ActionId, ActivityId, ScreenId, Trace, TraceEvent, VirtualDuration, VirtualTime,
    WidgetClass,
};

/// Protocol states: 0-4 connection management, 5-9 data transfer.
const STATES: [&str; 10] = [
    "CLOSED",
    "SYN_SENT",
    "SYN_RCVD",
    "FIN_WAIT",
    "TIME_WAIT", // connection region
    "ESTABLISHED",
    "SENDING",
    "RECEIVING",
    "ACK_WAIT",
    "RETRANSMIT", // transfer region
];

/// Each protocol state is encoded as a one-node "screen" whose resource id
/// is the state name — the analyzer only ever sees abstract identities, so
/// any state space fits.
fn state_event(t: u64, state: usize, via: Option<&str>) -> TraceEvent {
    let abstraction = Arc::new(AbstractHierarchy::from_root(AbstractNode {
        class: WidgetClass::FrameLayout,
        resource_id: Some(STATES[state].to_owned()),
        children: Vec::new(),
    }));
    TraceEvent {
        time: VirtualTime::from_secs(t),
        screen: ScreenId(state as u32),
        activity: ActivityId(if state < 5 { 0 } else { 1 }),
        abstract_id: abstraction.id(),
        abstraction,
        action: via.map(|_| Action::Widget(ActionId(state as u32))),
        action_widget_rid: via.map(Arc::from),
    }
}

/// Random walk: dense transitions inside each region, a rare bridge
/// between CLOSED-side and ESTABLISHED-side.
fn protocol_walk(steps: usize, seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut state = 0usize;
    let mut trace = Trace::new();
    trace.push(state_event(0, 0, None));
    for i in 1..steps {
        let in_transfer = state >= 5;
        // Handshakes happen occasionally; teardown is rare (the paper's
        // one-way loose coupling: easy to enter, hard to leave).
        let cross = rng.gen::<f64>() < if in_transfer { 0.0001 } else { 0.006 };
        let (next, via) = if cross {
            if in_transfer {
                (rng.gen_range(0..5), "event_teardown")
            } else {
                (5, "event_handshake_done")
            }
        } else if in_transfer {
            (5 + rng.gen_range(0..5), "event_segment")
        } else {
            (rng.gen_range(0..5), "event_control")
        };
        state = next;
        trace.push(state_event(i as u64 * 2, state, Some(via)));
    }
    trace
}

fn main() {
    let trace = protocol_walk(600, 11);
    let transfer = trace.events().iter().filter(|e| e.screen.0 >= 5).count();
    let first_transfer = trace.events().iter().position(|e| e.screen.0 >= 5);
    let last_conn = trace.events().iter().rposition(|e| e.screen.0 < 5);
    println!(
        "protocol walk: {} events over {} states ({} in the transfer region, first at {:?}, last connection at {:?})",
        trace.len(),
        STATES.len(),
        transfer,
        first_transfer,
        last_conn
    );

    // Online: does FindSpace see the handshake as a subspace boundary?
    let cfg = FindSpaceConfig {
        l_min: VirtualDuration::from_secs(60),
        min_prefix_events: 8,
        min_prefix_distinct: 2,
        ..FindSpaceConfig::default()
    };
    match find_space(trace.events(), &cfg) {
        Some(split) => {
            let e = &trace.events()[split.index];
            println!(
                "FindSpace: boundary at event {} (score {:.2}) — entered via {:?}",
                split.index, split.score, e.action_widget_rid
            );
        }
        None => println!("FindSpace: no loosely coupled boundary in this walk"),
    }

    // Offline (trace segmentation): recover the regions from the trace.
    let clusters = partition_traces(&[&trace], &PartitionConfig::default());
    println!(
        "\noffline trace partition found {} region(s):",
        clusters.len()
    );
    let name_of = |id: &taopt_ui_model::AbstractScreenId| {
        (0..STATES.len())
            .map(|s| state_event(0, s, None))
            .find(|e| e.abstract_id == *id)
            .map(|e| STATES[e.screen.0 as usize])
            .unwrap_or("?")
    };
    for (i, c) in clusters.iter().enumerate() {
        let names: Vec<&str> = c.iter().map(name_of).collect();
        println!("  region {i}: {names:?}");
    }

    // Offline (graph clustering): the same regions from the empirical
    // transition graph and the min-conductance agglomerator.
    use taopt::partition::partition_graph;
    let g = trace.transition_graph();
    let graph_clusters = partition_graph(&g, &PartitionConfig::default());
    println!(
        "\ngraph partition found {} region(s):",
        graph_clusters.len()
    );
    for (i, c) in graph_clusters.iter().enumerate() {
        let names: Vec<&str> = c
            .iter()
            .map(|n| name_of(&taopt_ui_model::AbstractScreenId(*n)))
            .collect();
        println!("  region {i}: {names:?}");
    }
}
