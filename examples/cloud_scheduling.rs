//! Testing-cloud economics: the resource-constrained mode on a catalog
//! app, with the coordinator's allocation/deallocation behaviour and the
//! machine-time bill made visible.
//!
//! The paper motivates TaOPT with testing-cloud pricing ("AWS Device
//! Farm's rate of $0.17 per device minute"); this example prints the
//! simulated bill for reaching the baseline's coverage with and without
//! TaOPT.
//!
//! ```sh
//! cargo run --release --example cloud_scheduling
//! ```

use std::sync::Arc;

use taopt::metrics::curves::machine_time_to_reach;
use taopt::session::{ParallelSession, RunMode, SessionConfig};
use taopt_app_sim::catalog_entries;
use taopt_tools::ToolKind;
use taopt_ui_model::VirtualDuration;

const DOLLARS_PER_DEVICE_MINUTE: f64 = 0.17;

fn dollars(machine: VirtualDuration) -> f64 {
    machine.as_secs() as f64 / 60.0 * DOLLARS_PER_DEVICE_MINUTE
}

fn main() {
    let entry = &catalog_entries()[1]; // AccuWeather
    let app = Arc::new(entry.generate());
    println!(
        "{} v{} ({}, {} installs): {} screens, {} methods",
        entry.name,
        entry.version,
        entry.category,
        entry.downloads,
        app.screen_count(),
        app.method_count()
    );

    // Baseline: 5 devices for an hour, no coordination.
    let base_cfg = SessionConfig::new(ToolKind::WcTester, RunMode::Baseline);
    let baseline = ParallelSession::run(Arc::clone(&app), &base_cfg);
    println!(
        "\nbaseline: coverage {}, machine time {}, bill ${:.2}",
        baseline.union_coverage(),
        baseline.machine_time,
        dollars(baseline.machine_time)
    );

    // TaOPT resource-constrained: same 5 machine-hour budget, devices
    // allocated only as subspaces are discovered.
    let taopt_cfg = SessionConfig::new(ToolKind::WcTester, RunMode::TaoptResource);
    let taopt = ParallelSession::run(Arc::clone(&app), &taopt_cfg);
    println!(
        "TaOPT (resource): coverage {}, machine time {}, wall clock {}",
        taopt.union_coverage(),
        taopt.machine_time,
        taopt.wall_clock
    );

    // Allocation timeline.
    println!("\ndevice allocation timeline:");
    for i in &taopt.instances {
        println!(
            "  {}: {} -> {} ({})",
            i.instance,
            i.allocated_at,
            i.deallocated_at,
            i.deallocated_at.since(i.allocated_at)
        );
    }

    // The RQ4 question: machine time needed to match the baseline.
    match machine_time_to_reach(&taopt.union_curve, baseline.union_coverage()) {
        Some(m) => {
            let saved = baseline.machine_time.saturating_sub(m);
            println!(
                "\nTaOPT reached the baseline's coverage after {m} of machine time \
                 (saved {saved}, ${:.2} of ${:.2})",
                dollars(saved),
                dollars(baseline.machine_time)
            );
        }
        None => println!(
            "\nTaOPT did not reach the baseline's final coverage within its budget \
             (final: {} vs {})",
            taopt.union_coverage(),
            baseline.union_coverage()
        ),
    }
}
